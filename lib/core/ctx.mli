(** The unified solver run context — re-exported as {!Solver.Ctx}.

    PRs 1–3 grew a four-way cross-product of per-solver optional
    arguments ([?deadline ?gains ?checkpoint ?resume_from], and the
    multicore work would have added [?pool]). A {!t} packs all of them
    into one record that is threaded through every entry point as a
    single [?ctx] argument; it is also the documented extension point —
    a new piece of run environment becomes a field here, not another
    optional argument on fourteen signatures.

    Every field is optional with a conservative default: [Ctx.default]
    (equivalently [Ctx.make ()]) runs unbudgeted, sequentially, seeded
    from 0, without checkpoints. Builders are pipe-friendly:

    {[
      Solver.cra ~ctx:Ctx.(default |> with_budget 30. |> with_jobs 8) inst
    ]}

    A context is one {e run}'s environment. The [rng] field is a live,
    mutable generator: reusing one context across several solves
    continues its stream (build a fresh context, or use {!with_seed},
    when runs must be independently reproducible). *)

type degrade = { link : string; detail : string }
(** One degradation notice: the chain link that degraded and a
    human-readable reason (same text as the {!Solver.reason} the outcome
    carries). *)

type t = {
  deadline : Wgrap_util.Timer.deadline option;
      (** wall-clock budget every link polls; [None] = unbudgeted *)
  rng : Wgrap_util.Rng.t option;
      (** randomness source for stochastic links (SRA); [None] = a fresh
          seed-0 generator per solve *)
  gains : Gain_matrix.t option;
      (** shared incremental gain matrix; [None] = each solver builds a
          private one *)
  candidates : int;
      (** per-paper candidate width k for the matrices solvers build
          themselves ([gains = None]): [0] = dense (the default, the
          parity oracle), [k > 0] = candidate-pruned rows over the
          instance's inverted topic index ([k >= n_r] normalizes to
          dense). Ignored when [gains] is set — a supplied matrix
          carries its own backing. *)
  checkpoint : Checkpoint.sink option;
      (** durable-state sink (journal events + snapshot offers) *)
  resume_from : (Checkpoint.state, string) result option;
      (** [Ok state]: re-enter the chain at the captured point;
          [Error msg]: a checkpoint was offered but failed load
          certification — run fresh and report {!Solver.Stale_checkpoint} *)
  pool : Wgrap_par.Pool.t option;
      (** domain pool for the parallel paths (SRA chain fan-out, JRA
          batches, gain-matrix rebuilds); [None] = sequential *)
  on_degrade : (degrade -> unit) option;
      (** observer fired by {!Solver.jra}/{!Solver.cra} the moment a
          degradation reason is recorded — for live progress reporting,
          ahead of the outcome's aggregated reason list *)
  objective : Objective.spec;
      (** the objective every solver entered through this context binds
          and scores against; defaults to {!Objective.coverage} (the
          paper's Eq. 9, bit-identical to the pre-objective path). When
          the spec {!Objective.transforms} the instance, a supplied
          [gains] matrix must have been created over the bound
          objective's {!Objective.view}. *)
}

val default : t
(** All fields [None]: unbudgeted, sequential, fresh seed-0 randomness,
    no checkpointing. *)

val make :
  ?deadline:Wgrap_util.Timer.deadline ->
  ?budget:float ->
  ?rng:Wgrap_util.Rng.t ->
  ?seed:int ->
  ?gains:Gain_matrix.t ->
  ?candidates:int ->
  ?checkpoint:Checkpoint.sink ->
  ?resume_from:(Checkpoint.state, string) result ->
  ?pool:Wgrap_par.Pool.t ->
  ?jobs:int ->
  ?on_degrade:(degrade -> unit) ->
  ?objective:Objective.spec ->
  unit ->
  t
(** Labelled constructor. [budget] is shorthand for a fresh deadline of
    that many seconds ([deadline] wins when both are given); [seed] for
    [rng:(Rng.create seed)] ([rng] wins); [jobs] for
    [pool:(Pool.create ~jobs)] ([pool] wins). [objective] defaults to
    {!Objective.coverage}. *)

(** {2 Pipe-style builders}

    Each returns an updated copy; none mutates its argument. *)

val with_deadline : Wgrap_util.Timer.deadline -> t -> t

val with_budget : float -> t -> t
(** A fresh deadline expiring the given number of seconds from now. *)

val with_rng : Wgrap_util.Rng.t -> t -> t

val with_seed : int -> t -> t
(** [with_rng (Rng.create seed)]. *)

val with_gains : Gain_matrix.t -> t -> t

val with_candidates : int -> t -> t
(** Set the candidate width k for solver-built matrices (0 = dense).
    Raises [Invalid_argument] on a negative width. *)

val with_checkpoint : Checkpoint.sink -> t -> t
val with_resume : (Checkpoint.state, string) result -> t -> t
val with_pool : Wgrap_par.Pool.t -> t -> t

val with_jobs : int -> t -> t
(** [with_pool (Pool.create ~jobs)]. *)

val with_on_degrade : (degrade -> unit) -> t -> t
val with_objective : Objective.spec -> t -> t

(** {2 Accessors used by the solver implementations} *)

val rng_or : seed:int -> t -> Wgrap_util.Rng.t
(** The context's generator, or a fresh [Rng.create seed]. *)

val jobs : t -> int
(** The pool's job count; 1 when no pool is set. *)

val notify_degrade : t -> link:string -> detail:string -> unit
(** Fire [on_degrade] if set; never raises (observer exceptions are
    swallowed — reporting must not alter solver behaviour). *)
