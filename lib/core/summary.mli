(** Human-readable reports over a finished assignment — what a program
    chair actually looks at before sign-off. *)

type t = {
  n_papers : int;
  n_reviewers : int;
  coverage_total : float;
  coverage_mean : float;
  coverage_min : float;
  coverage_p10 : float;  (** 10th-percentile paper coverage *)
  coverage_max : float;
  coverage_gini : float;
      (** Gini coefficient of per-paper coverage: 0 = perfectly equal,
          towards 1 = coverage concentrated on few papers *)
  topic_balance : float;
      (** min/max of mean coverage grouped by each paper's dominant
          topic: 1 = every topic community equally served *)
  objective_name : string;  (** {!Objective.name} of the scoring spec *)
  objective_value : float;  (** {!Objective.value} of the assignment *)
  workload_min : int;
  workload_max : int;
  workload_mean : float;
  idle_reviewers : int;  (** reviewers with no papers *)
  coi_violations : int;  (** should be 0 for any library solver *)
}

val compute : ?objective:Objective.spec -> Instance.t -> Assignment.t -> t
(** [objective] (default {!Objective.coverage}) selects the scoring
    backend: coverage statistics and fairness metrics are computed over
    the objective's {!Objective.view} (so a taxonomy objective credits
    coverage through nearby topics), and [objective_value] is
    {!Objective.value}. *)

val pp : Format.formatter -> t -> unit
(** Multi-line textual report. *)

val worst_papers : Instance.t -> Assignment.t -> k:int -> (int * float) list
(** The [k] papers with the lowest group coverage, worst first — the
    ones a chair would reassign by hand. *)

val coverage_histogram :
  ?buckets:int -> Instance.t -> Assignment.t -> (float * float * int) array
(** [(lo, hi, count)] buckets over per-paper coverage in [0, 1]. *)

(** {2 Sharded-run provenance}

    A sharded solve ([Shard.Supervisor]) reports one record per shard so
    a degraded merge is attributable: which shards ran clean, which were
    retried, which fell back to the greedy backstop and why. The types
    live here (plain data, no dependency on [lib/shard]) so the CLI and
    service layers can render them next to {!t}. *)

type shard_status =
  | Shard_complete  (** primary link finished within its attempts *)
  | Shard_degraded of string list
      (** finished, but only after recorded failures (retry reasons,
          oldest first) *)
  | Shard_fallback of string
      (** every attempt failed; the greedy backstop answered. The
          string is the last failure. *)
  | Shard_cached
      (** a resumed run loaded this shard's completed result from its
          checkpoint directory without re-solving *)

type shard_provenance = {
  shard : int;
  shard_papers : int;  (** papers assigned to this shard *)
  attempts : int;  (** solve attempts consumed, 0 for [Shard_cached] *)
  shard_status : shard_status;
  shard_elapsed : float;  (** seconds of wall clock spent on the shard *)
}

val pp_shard_provenance : Format.formatter -> shard_provenance -> unit
(** One line: shard id, paper count, attempts, status, elapsed. *)

val pp_shard_provenances : Format.formatter -> shard_provenance list -> unit
(** The whole table, one shard per line, in shard order. *)

val to_json :
  ?compact:bool ->
  ?extra:(string * string) list ->
  ?shards:shard_provenance list ->
  t ->
  string
(** The one JSON rendering of a summary, shared by [wgrap assign
    --json], [serve stats] and the sharded-run provenance report. Keys:
    [papers], [reviewers], [objective {name, value}], [coverage {total,
    mean, min, p10, max}], [fairness {gini, topic_balance}], [workload
    {min, mean, max, idle}], [coi_violations], plus a [shards] array
    when provenance is supplied. [extra] prepends caller fields — each
    pair is a raw key and an already-rendered JSON value (the serve
    stats endpoint adds its event counters this way). [compact] emits
    one newline-free line for line-oriented protocols (default: a
    pretty multi-line document). *)

val json_string : string -> string
(** JSON string literal with the usual escapes — exposed so callers
    building [extra] values quote strings consistently. *)
