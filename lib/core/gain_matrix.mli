(** Shared incremental gain-matrix layer.

    Per-paper rows of marginal coverage gains (Definition 8) w.r.t. a
    maintained group vector per paper, shared by {!Stage.solve},
    {!Stage.solve_flow}, {!Sdga}, {!Greedy} and {!Sra} through their
    [?gains] parameters. Rows live in Bigarray (Float64, C-layout)
    buffers allocated lazily on first touch — outside the OCaml heap,
    so pool domains read them without GC traffic — and are versioned
    per paper, like the lazy greedy heap entries: a group update bumps
    a paper's version only when it actually moved the group vector
    somewhere the paper's gains can see (its topic support — everywhere
    for [Reviewer_coverage]), and stale rows are recomputed lazily with
    the O(nnz) sparse kernels on next access.

    Two backings share this interface, chosen at {!create}:

    {ul
    {- {e Dense} ([candidates = 0], or [candidates >= n_r]): each row
       covers every reviewer — bit-identical values and behaviour to
       the historical flat [n_p * n_r] matrix, kept as the parity
       oracle.}
    {- {e Candidate-pruned} ([0 < candidates < n_r]): each row covers
       only the paper's top-k candidates from {!Instance.candidates}
       (inverted topic index, exact pair-score ranking, COI filtered),
       retrieved lazily per paper. Total row storage is O(n_p * k);
       nothing [n_p * n_r]-sized is ever allocated — no score-matrix
       cache exists and the Eq. 9 sums stream through one transient row.
       Candidate cells hold the same floats as their dense
       counterparts; reviewers outside the candidate set simply have no
       cell, and consumers fall back to {!gain} for them.}}

    The matrix holds {e raw} coverage gains: conflicts of interest,
    capacities and group membership are masked by the consumers. Cells
    of reviewers already in a paper's group may hold stale values —
    every consumer excludes members before reading.

    Consistency with an evolving {!Assignment.t} is the caller's
    contract: call {!add} after each [Assignment.add], or {!set_group}
    when a group is rebuilt wholesale (the SRA removal phase). *)

type t

val create : ?candidates:int -> Instance.t -> t
(** All groups empty; no rows computed yet. [candidates] is the per-
    paper top-k width, [0] (the default) for the dense backing; a width
    [>= n_r] prunes nothing and normalizes to dense. O(n_p) until rows
    are touched — an xl-scale instance costs three option/int slots per
    paper here, nothing more. Raises [Invalid_argument] on a negative
    width. *)

val pruned : t -> bool
(** Whether the candidate-pruned backing is in force. *)

val candidate_count : t -> int
(** The normalized per-paper candidate width; [0] for dense. *)

val candidates : t -> paper:int -> int array
(** The paper's candidate reviewer ids (ascending; retrieved and then
    memoized on first call — possibly shorter than the width for papers
    with narrow supports). Raises [Invalid_argument] on a dense matrix:
    dense consumers iterate all reviewers and should not pay retrieval. *)

val matrix_bytes : t -> int
(** Bytes of Bigarray row storage allocated so far — the "peak matrix
    memory" a pruning bench reports. O(n_p) scan; telemetry only. *)

val reset : t -> unit
(** Empty every group and invalidate every row (cheap: versions bump,
    rows recompute lazily). *)

val add : t -> paper:int -> reviewer:int -> unit
(** Extend [paper]'s group vector by the reviewer (coordinatewise max)
    and invalidate the paper's row if the vector changed visibly.
    O(nnz(reviewer)). *)

val set_group : t -> paper:int -> int list -> unit
(** Replace [paper]'s group wholesale; invalidates the row only if the
    resulting vector differs visibly from the current one (an SRA
    removal whose victim never defined the max keeps the row — the same
    visibility rule lets the resident serve state keep a matrix across
    events whose decided ops touched few groups). *)

val version : t -> paper:int -> int
(** Monotone per-paper group version — pairs with heap-entry versioning
    in {!Greedy}. *)

val group_vector : t -> paper:int -> Topic_vector.t
(** The maintained group vector (live; do not mutate). *)

val gain : t -> paper:int -> reviewer:int -> float
(** One fresh marginal gain against the current group vector, computed
    directly with the sparse kernel; does not touch the row cache.
    Works for any reviewer, candidate or not. *)

val blit_row : t -> paper:int -> dst:float array -> unit
(** Copy the paper's row of [n_r] raw gains into [dst], recomputing it
    first if stale. Dense matrices only — raises [Invalid_argument] on
    a pruned one (there is no full row to copy; use {!iter_row}). *)

val iter_row : t -> paper:int -> (reviewer:int -> gain:float -> unit) -> unit
(** Visit the paper's row, recomputing it first if stale: every
    reviewer in ascending order on a dense matrix, the candidate set in
    ascending order on a pruned one. A row accessor consumers can use
    without knowing the backing. *)

val fold_row :
  t -> paper:int -> init:'a -> ('a -> reviewer:int -> gain:float -> 'a) -> 'a
(** {!iter_row} as a fold, visiting the same cells in the same order —
    for consumers accumulating a value over a row (sums, argmax) without
    threading a ref through the callback. *)

val column_denominators : t -> float array
(** The Eq. 9 denominators [sum_p' c(r, p')] as maintained column sums
    of the score matrix, computed once and cached. On a pruned matrix
    the sums stream through one transient row per paper — O(n_r) live
    memory, bit-identical result (same accumulation order). *)

val score_column_sums : n_reviewers:int -> float array array -> float array
(** The pure computation behind {!column_denominators}, exposed as the
    single source of truth for the Eq. 9 denominator (also used by
    {!Sra.column_denominators}). *)

val adopt_static : t -> from:t -> unit
(** Share [from]'s cached score matrix and column sums (both immutable
    once computed) with [t], skipping their recomputation. Raises
    [Invalid_argument] on shape mismatch; caches [from] has not
    computed yet are simply not adopted. *)

val spawn : t -> t
(** A fresh matrix over the same instance and candidate width: empty
    groups, no rows, but sharing [from]'s static caches (score matrix /
    column sums, via {!adopt_static}) and every candidate list
    retrieved so far (immutable once computed; the spawn gets its own
    slot array, so later lazy retrievals never write shared memory).
    This is how parallel SRA gives each chain a private matrix without
    the per-chain full-matrix copies the dense design paid for: chain
    state is O(n_p) at spawn, rows materialize lazily per domain, and
    the heavy static state is shared read-only. *)

val rebind : t -> Instance.t -> unit
(** Point the matrix at a same-shaped instance — the resident serve
    state swaps in an instance with extended COI this way. Raw gain
    rows never read the COI mask, so all rows (and group state)
    survive; the cached score matrix and column sums are dropped (they
    do mask COI). A scoring-kind change invalidates rows and candidate
    lists instead. The caller's contract: paper and reviewer vectors
    are unchanged (build a fresh matrix otherwise). Raises
    [Invalid_argument] on shape mismatch. *)

val prime : ?pool:Wgrap_par.Pool.t -> ?deadline:Wgrap_util.Timer.deadline -> t -> unit
(** Force the static state now. Dense: the score matrix and the Eq. 9
    column sums, row-parallel with [pool] — bit-identical to the lazy
    sequential computation. Pruned: every candidate list (slots are
    per-paper, so workers fill them concurrently) and the streamed
    column sums; no [n_p * n_r] cache. Parallel SRA primes the
    coordinator's matrix once, then hands chains {!spawn}s of it.
    [deadline] is polled per row; expiry raises
    [Wgrap_util.Timer.Expired] and leaves the remaining state unset
    (safe: it computes lazily on access). *)

val rebuild : ?pool:Wgrap_par.Pool.t -> ?deadline:Wgrap_util.Timer.deadline -> t -> unit
(** Recompute all stale gain rows now. With [pool], rows are recomputed
    across domains (each row is a private Bigarray buffer; dense
    workers stage through task-local scratch) — bit-identical to the
    lazy sequential recomputation. Consumers that read whole rows right
    after a reset ({!Sdga} stage 1, {!Greedy}'s heap seeding) call this
    first to move the row fill onto the pool. [deadline] is polled per
    row; expiry raises [Wgrap_util.Timer.Expired], leaving the
    remaining rows stale (safe: they recompute lazily on access). *)
