(** Shared incremental gain-matrix layer.

    One flat row-major [n_p * n_r] array of marginal coverage gains
    (Definition 8) w.r.t. a maintained group vector per paper, shared by
    {!Stage.solve}, {!Stage.solve_flow}, {!Sdga}, {!Greedy} and {!Sra}
    through their [?gains] parameters. Rows are versioned per paper,
    like the lazy greedy heap entries: a group update bumps a paper's
    version only when it actually moved the group vector somewhere the
    paper's gains can see (its topic support — everywhere for
    [Reviewer_coverage]), and stale rows are recomputed lazily with the
    O(nnz) sparse kernels on next access.

    The matrix holds {e raw} coverage gains: conflicts of interest,
    capacities and group membership are masked by the consumers. Cells
    of reviewers already in a paper's group may hold stale values —
    every consumer excludes members before reading.

    Consistency with an evolving {!Assignment.t} is the caller's
    contract: call {!add} after each [Assignment.add], or {!set_group}
    when a group is rebuilt wholesale (the SRA removal phase). *)

type t

val create : Instance.t -> t
(** All groups empty; no rows computed yet. O(n_p * n_r) memory. *)

val reset : t -> unit
(** Empty every group and invalidate every row (cheap: versions bump,
    rows recompute lazily). *)

val add : t -> paper:int -> reviewer:int -> unit
(** Extend [paper]'s group vector by the reviewer (coordinatewise max)
    and invalidate the paper's row if the vector changed visibly.
    O(nnz(reviewer)). *)

val set_group : t -> paper:int -> int list -> unit
(** Replace [paper]'s group wholesale; invalidates the row only if the
    resulting vector differs visibly from the current one (an SRA
    removal whose victim never defined the max keeps the row). *)

val version : t -> paper:int -> int
(** Monotone per-paper group version — pairs with heap-entry versioning
    in {!Greedy}. *)

val group_vector : t -> paper:int -> Topic_vector.t
(** The maintained group vector (live; do not mutate). *)

val gain : t -> paper:int -> reviewer:int -> float
(** One fresh marginal gain against the current group vector, computed
    directly with the sparse kernel; does not touch the row cache. *)

val blit_row : t -> paper:int -> dst:float array -> unit
(** Copy the paper's row of [n_r] raw gains into [dst], recomputing it
    first if stale. *)

val score_matrix : t -> float array array
(** The instance's single-reviewer score matrix (COI cells hold
    [Lap.Hungarian.forbidden]), computed once and cached. *)

val column_denominators : t -> float array
(** The Eq. 9 denominators [sum_p' c(r, p')] as maintained column sums
    of {!score_matrix}, computed once and cached. *)

val score_column_sums : n_reviewers:int -> float array array -> float array
(** The pure computation behind {!column_denominators}, exposed as the
    single source of truth for the Eq. 9 denominator (also used by
    {!Sra.column_denominators}). *)

val adopt_static : t -> from:t -> unit
(** Share [from]'s cached score matrix and column sums (both immutable
    once computed) with [t], skipping their recomputation. This is how
    the per-chain matrices of parallel SRA reuse the coordinator's
    static caches: the shared arrays are only ever read after adoption,
    so handing them to matrices owned by other domains is safe. Raises
    [Invalid_argument] on shape mismatch; caches [from] has not computed
    yet are simply not adopted. *)

val prime : ?pool:Wgrap_par.Pool.t -> ?deadline:Wgrap_util.Timer.deadline -> t -> unit
(** Force the static caches now: the score matrix and the Eq. 9 column
    sums. With [pool], score rows are computed across domains (each row
    is freshly allocated by its worker, so no memory is shared) — the
    result is bit-identical to the lazy sequential computation. Parallel
    SRA primes the coordinator's matrix once, then shares the caches
    with the per-chain matrices via {!adopt_static}. [deadline] is
    polled per row; expiry raises [Wgrap_util.Timer.Expired] and leaves
    the caches unset (safe: they compute lazily on access). *)

val rebuild : ?pool:Wgrap_par.Pool.t -> ?deadline:Wgrap_util.Timer.deadline -> t -> unit
(** Recompute all stale gain rows now. With [pool], rows are recomputed
    across domains (each row writes a disjoint slice of the flat data
    array; workers stage through task-local buffers) — bit-identical to
    the lazy sequential recomputation. Consumers that blit whole rows
    right after a reset ({!Sdga} stage 1, {!Greedy}'s heap seeding) call
    this first to move the row fill onto the pool. [deadline] is polled
    per row; expiry raises [Wgrap_util.Timer.Expired], leaving the
    remaining rows stale (safe: they recompute lazily on access). *)
