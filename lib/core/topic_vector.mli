(** T-dimensional topic vectors (Section 2.1).

    Both reviewers and papers are represented this way: coordinate [t] is
    the relevance (expertise, for a reviewer; content weight, for a
    paper) to topic [t]. Vectors are non-negative; they need not be
    normalized — the scoring functions divide by the paper mass — but the
    extraction pipeline produces normalized ones. *)

type t = float array
(** Non-negative weights; owned by the caller. The library never mutates
    vectors it is handed. *)

val dim : t -> int

val validate : t -> (unit, string) result
(** Check non-negativity and at least one dimension. *)

val normalize : t -> t
(** Fresh vector scaled to sum 1 (uniform if the input is all-zero). *)

val mass : t -> float
(** Sum of coordinates. *)

val group_max : t list -> t
(** Expertise of a reviewer group (Definition 2): coordinatewise maximum.
    Raises [Invalid_argument] on an empty list or mismatched dims. *)

val extend_max : t -> t -> t
(** [extend_max g r] is the group vector after adding reviewer [r] to a
    group with vector [g]; fresh array. *)

val extend_max_into : dst:t -> t -> unit
(** In-place variant used by the hot loops: [dst.(t) <- max dst.(t) r.(t)]. *)

type support = {
  vec : t;  (** the dense vector the support was compiled from *)
  idx : int array;  (** indices of the strictly positive coordinates *)
  nz : float array;  (** [nz.(k) = vec.(idx.(k))] *)
  mass : float;  (** total mass, summed in dense coordinate order *)
}
(** Compiled sparse view of a vector: the nonzero coordinates plus the
    total mass, precomputed once so the scoring kernels can iterate in
    O(nnz) instead of O(T). [mass] is accumulated in the same
    left-to-right order as the dense scoring denominator, so sparse and
    dense scores agree bit-for-bit on the division. *)

val support : t -> support
(** Compile a sparse view. O(T); done once per vector at instance
    construction. *)

val top_topics : t -> int -> int list
(** Indices of the [k] heaviest coordinates, heaviest first (ties broken
    by lower index). Used by the case-study reports. *)

val pp : Format.formatter -> t -> unit
