let solve_impl ?deadline inst =
  let n_p = Instance.n_papers inst and n_r = Instance.n_reviewers inst in
  let dp = inst.Instance.delta_p and dr = inst.Instance.delta_r in
  let assignment = Assignment.empty ~n_papers:n_p in
  let workload = Array.make n_r 0 in
  let best_for p =
    let excluded =
      Array.init n_r (fun r ->
          workload.(r) >= dr || Instance.forbidden inst ~paper:p ~reviewer:r)
    in
    let problem =
      Jra.make ~scoring:inst.Instance.scoring ~excluded
        ~paper:inst.Instance.papers.(p) ~pool:inst.Instance.reviewers
        ~group_size:dp ()
    in
    Jra_bba.solve ?deadline problem
  in
  let available_for p =
    let count = ref 0 in
    for r = 0 to n_r - 1 do
      if workload.(r) < dr && not (Instance.forbidden inst ~paper:p ~reviewer:r)
      then incr count
    done;
    !count
  in
  let assign_group p group =
    List.iter
      (fun r ->
        Assignment.add assignment ~paper:p ~reviewer:r;
        workload.(r) <- workload.(r) + 1)
      group
  in
  (* Serve a paper with everything it can still get (possibly < delta_p);
     the repair pass completes any shortfall. *)
  let serve_starving p =
    let avail = available_for p in
    if avail >= dp then assign_group p (best_for p).Jra.group
    else begin
      let rs = ref [] in
      for r = n_r - 1 downto 0 do
        if workload.(r) < dr && not (Instance.forbidden inst ~paper:p ~reviewer:r)
        then rs := r :: !rs
      done;
      assign_group p !rs
    end
  in
  let cache = Array.make n_p None in
  let unassigned = ref (List.init n_p Fun.id) in
  (* On deadline expiry the remaining papers are left to the repair
     pass below: they get plain best-pair fills instead of BBA groups. *)
  while !unassigned <> [] && not (Wgrap_util.Timer.expired_opt deadline) do
    (* A paper whose remaining pool has shrunk to delta_p (or below) must
       be served immediately or it becomes unservable. *)
    match List.find_opt (fun p -> available_for p <= dp) !unassigned with
    | Some p ->
        serve_starving p;
        unassigned := List.filter (fun q -> q <> p) !unassigned
    | None ->
        (* Refresh stale caches (sound: availability only shrinks, so an
           intact cached group stays optimal), pick the best. *)
        let best_paper = ref (-1) and best_score = ref neg_infinity in
        List.iter
          (fun p ->
            let sol =
              match cache.(p) with
              | Some sol
                when List.for_all (fun r -> workload.(r) < dr) sol.Jra.group ->
                  sol
              | _ ->
                  let sol = best_for p in
                  cache.(p) <- Some sol;
                  sol
            in
            if sol.Jra.score > !best_score then begin
              best_score := sol.Jra.score;
              best_paper := p
            end)
          !unassigned;
        let p = !best_paper in
        (match cache.(p) with
        | Some sol -> assign_group p sol.Jra.group
        | None -> assert false);
        unassigned := List.filter (fun q -> q <> p) !unassigned
  done;
  Repair.complete inst assignment;
  assignment

let solve ?(ctx = Ctx.default) inst = solve_impl ?deadline:ctx.Ctx.deadline inst
