module Timer = Wgrap_util.Timer

type reason =
  | Timeout of { link : string }
  | Fault of { link : string; error : string }

type 'a outcome =
  | Complete of 'a
  | Degraded of 'a * reason list
  | Infeasible of string

let value = function
  | Complete a | Degraded (a, _) -> Some a
  | Infeasible _ -> None

let status = function
  | Complete _ -> "complete"
  | Degraded _ -> "degraded"
  | Infeasible _ -> "infeasible"

let reasons = function
  | Complete _ | Infeasible _ -> []
  | Degraded (_, rs) -> rs

let pp_reason ppf = function
  | Timeout { link } -> Format.fprintf ppf "%s: deadline expired" link
  | Fault { link; error } -> Format.fprintf ppf "%s: %s" link error

(* A fresh deadline covering [frac] of what remains of [d]. Sub-budgets
   are real deadlines of their own so a link cannot starve its
   successors, while the outer deadline stays the hard stop. *)
let slice frac = function
  | None -> None
  | Some d -> Some (Timer.deadline (frac *. Timer.remaining d))

let exn_message = function Failure m -> m | e -> Printexc.to_string e

(* {1 JRA chain: ILP -> BBA -> greedy} *)

let jra ?budget problem =
  let deadline = Option.map Timer.deadline budget in
  let rev_reasons = ref [] in
  let push r = rev_reasons := r :: !rev_reasons in
  let best = ref None in
  let consider (sol : Jra.solution) =
    match !best with
    | Some (b : Jra.solution) when b.score >= sol.score -> ()
    | _ -> best := Some sol
  in
  let ilp_exact =
    match Jra_ilp.solve ?deadline:(slice 0.5 deadline) problem with
    | Jra_ilp.Solved sol ->
        consider sol;
        true
    | Jra_ilp.Timed_out incumbent ->
        Option.iter consider incumbent;
        push (Timeout { link = "jra-ilp" });
        false
    | exception e ->
        push (Fault { link = "jra-ilp"; error = exn_message e });
        false
  in
  let bba_exact =
    ilp_exact
    ||
    match Jra_bba.solve ?deadline problem with
    | sol ->
        consider sol;
        if Timer.expired_opt deadline then begin
          push (Timeout { link = "jra-bba" });
          false
        end
        else true
    | exception e ->
        push (Fault { link = "jra-bba"; error = exn_message e });
        false
  in
  if !best = None then begin
    match Jra.greedy problem with
    | sol -> consider sol
    | exception e -> push (Fault { link = "jra-greedy"; error = exn_message e })
  end;
  match !best with
  | None -> Infeasible "every JRA link failed to produce a group"
  | Some sol ->
      if bba_exact then Complete sol
      else Degraded (sol, List.rev !rev_reasons)

(* {1 CRA chain: SDGA + SRA -> SDGA -> per-stage greedy} *)

let cra ?budget ?(seed = 0) ?(refine = true) inst =
  let deadline = Option.map Timer.deadline budget in
  let rev_reasons = ref [] in
  let push r = rev_reasons := r :: !rev_reasons in
  (* Accept a candidate only if it passes full validation; a truncated
     run that left short groups gets one shot at greedy completion. *)
  let checked link a =
    match Assignment.validate inst a with
    | Ok () -> Some a
    | Error msg -> (
        match Repair.complete inst a with
        | () -> (
            match Assignment.validate inst a with
            | Ok () ->
                push (Fault { link; error = "repaired: " ^ msg });
                Some a
            | Error msg' ->
                push (Fault { link; error = msg' });
                None)
        | exception e ->
            push (Fault { link; error = exn_message e });
            None)
  in
  let run link f =
    match f () with
    | a ->
        let out = checked link a in
        if Option.is_some out && Timer.expired_opt deadline then
          push (Timeout { link });
        out
    | exception Timer.Expired ->
        push (Timeout { link });
        None
    | exception e ->
        push (Fault { link; error = exn_message e });
        None
  in
  (* One gain matrix serves the whole chain: SDGA fills it stage by
     stage, SRA reuses its cached score matrix, Eq. 9 column sums and
     surviving rows, and the fallback links reset it on entry. *)
  let gm = Gain_matrix.create inst in
  let primary () =
    (* SDGA gets half the remaining budget; refinement, which improves
       monotonically and can stop at any round, soaks up the rest. *)
    let sdga_slice = if refine then slice 0.5 deadline else deadline in
    let a = Sdga.solve ?deadline:sdga_slice ~gains:gm inst in
    if (not refine) || Timer.expired_opt deadline then a
    else Sra.refine ?deadline ~gains:gm ~rng:(Wgrap_util.Rng.create seed) inst a
  in
  let result =
    match run "sdga+sra" primary with
    | Some a -> Some a
    | None -> (
        match run "sdga" (fun () -> Sdga.solve ?deadline ~gains:gm inst) with
        | Some a -> Some a
        | None -> run "greedy" (fun () -> Greedy.solve ?deadline ~gains:gm inst))
  in
  match result with
  | Some a -> (
      match List.rev !rev_reasons with
      | [] -> Complete a
      | rs -> Degraded (a, rs))
  | None ->
      let detail =
        match !rev_reasons with
        | Fault { error; _ } :: _ -> ": " ^ error
        | _ -> ""
      in
      Infeasible ("every CRA link failed to produce a valid assignment" ^ detail)
