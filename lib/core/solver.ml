module Timer = Wgrap_util.Timer
module Ctx = Ctx

type reason =
  | Timeout of { link : string }
  | Fault of { link : string; error : string }
  | Stale_checkpoint of { error : string }

type 'a outcome =
  | Complete of 'a
  | Degraded of 'a * reason list
  | Infeasible of string

let value = function
  | Complete a | Degraded (a, _) -> Some a
  | Infeasible _ -> None

let status = function
  | Complete _ -> "complete"
  | Degraded _ -> "degraded"
  | Infeasible _ -> "infeasible"

let reasons = function
  | Complete _ | Infeasible _ -> []
  | Degraded (_, rs) -> rs

let pp_reason ppf = function
  | Timeout { link } -> Format.fprintf ppf "%s: deadline expired" link
  | Fault { link; error } -> Format.fprintf ppf "%s: %s" link error
  | Stale_checkpoint { error } ->
      Format.fprintf ppf "checkpoint: discarded (%s); ran fresh" error

(* A fresh deadline covering [frac] of what remains of [d]. Sub-budgets
   are real deadlines of their own so a link cannot starve its
   successors, while the outer deadline stays the hard stop. *)
let slice frac = function
  | None -> None
  | Some d -> Some (Timer.deadline (frac *. Timer.remaining d))

(* The exception text stored in [Fault]: message plus, when the runtime
   is recording them, the raised backtrace — a degraded run must be
   debuggable from the stderr summary alone. Callers invoke this first
   thing in an exception handler, before anything can overwrite the
   global backtrace slot. *)
let describe_exn e =
  let msg =
    match e with
    | Failure m -> m
    (* A deadline expiry that escaped a solver is a truncation, not a
       crash; name it as such so service-mode degradation reports read
       as the timeout they are instead of "Wgrap_util.Timer.Expired". *)
    | Timer.Expired -> "deadline expired"
    | e -> Printexc.to_string e
  in
  if Printexc.backtrace_status () then
    match String.trim (Printexc.get_backtrace ()) with
    | "" -> msg
    | bt -> msg ^ "\n" ^ bt
  else msg

let exn_message = describe_exn

(* Service-mode degradation text: the reason, stamped with the event
   that triggered the re-solve and how much of its deadline was left
   when the reason was recorded — `wgrap serve` answers and quarantine
   logs must be attributable to one event without correlating streams. *)
let describe_reason ?event ?deadline r =
  let base = Format.asprintf "%a" pp_reason r in
  match (event, deadline) with
  | None, None -> base
  | _ ->
      let parts =
        (match event with
        | Some id -> [ Printf.sprintf "event=%d" id ]
        | None -> [])
        @
        match deadline with
        | Some d ->
            [
              Printf.sprintf "deadline-remaining=%.0fms"
                (1000. *. Timer.remaining d);
            ]
        | None -> []
      in
      base ^ " [" ^ String.concat " " parts ^ "]"

(* The live-progress half of a [push]: every recorded reason is also
   surfaced through the context's [on_degrade] observer. *)
let degrade_of_reason = function
  | Timeout { link } -> (link, "deadline expired")
  | Fault { link; error } -> (link, error)
  | Stale_checkpoint { error } -> ("checkpoint", error)

let notify ctx r =
  let link, detail = degrade_of_reason r in
  Ctx.notify_degrade ctx ~link ~detail

(* {1 JRA chain: ILP -> BBA -> greedy} *)

(* [on_reason] fires the moment a reason is recorded; {!jra} wires it to
   the context observer, {!jra_batch} keeps it silent inside workers and
   lets the coordinator report afterwards (observers are a single-domain
   contract). *)
let jra_chain ?deadline ~on_reason problem =
  let rev_reasons = ref [] in
  let push r =
    rev_reasons := r :: !rev_reasons;
    on_reason r
  in
  let best = ref None in
  let consider (sol : Jra.solution) =
    match !best with
    | Some (b : Jra.solution) when b.score >= sol.score -> ()
    | _ -> best := Some sol
  in
  let ilp_exact =
    match Jra_ilp.solve ?deadline:(slice 0.5 deadline) problem with
    | Jra_ilp.Solved sol ->
        consider sol;
        true
    | Jra_ilp.Timed_out incumbent ->
        Option.iter consider incumbent;
        push (Timeout { link = "jra-ilp" });
        false
    | exception e ->
        push (Fault { link = "jra-ilp"; error = exn_message e });
        false
  in
  let bba_exact =
    ilp_exact
    ||
    match Jra_bba.solve_counting ?deadline problem with
    | sol, _ ->
        consider sol;
        if Timer.expired_opt deadline then begin
          push (Timeout { link = "jra-bba" });
          false
        end
        else true
    | exception e ->
        push (Fault { link = "jra-bba"; error = exn_message e });
        false
  in
  if !best = None then begin
    match Jra.greedy problem with
    | sol -> consider sol
    | exception e -> push (Fault { link = "jra-greedy"; error = exn_message e })
  end;
  match !best with
  | None -> Infeasible "every JRA link failed to produce a group"
  | Some sol ->
      if bba_exact then Complete sol
      else Degraded (sol, List.rev !rev_reasons)

let jra ?(ctx = Ctx.default) problem =
  jra_chain ?deadline:ctx.Ctx.deadline ~on_reason:(notify ctx) problem

let jra_batch ?(ctx = Ctx.default) problems =
  let module Pool = Wgrap_par.Pool in
  let pool = match ctx.Ctx.pool with Some p -> p | None -> Pool.sequential in
  let deadline = ctx.Ctx.deadline in
  (* Workers run the whole anytime chain on their own problem; the ILP
     and BBA backends keep call-local state and the deadline is shared
     read-only. Reasons are reported by the coordinator afterwards, in
     problem order, so the observer never runs off the calling domain. *)
  let results =
    Pool.run pool
      ~n:(Array.length problems)
      (fun i -> jra_chain ?deadline ~on_reason:ignore problems.(i))
  in
  Array.iter (fun out -> List.iter (notify ctx) (reasons out)) results;
  results

(* {1 CRA chain: SDGA + SRA -> SDGA -> per-stage greedy} *)

(* The bare primary CRA link, exposed so supervisors (lib/shard) can run
   it under their own retry/fallback policy. Unlike [cra] this *raises*
   on failure — Timer.Expired on expiry, the solver's exception on a
   fault — and performs no validation or repair; the caller owns the
   degradation ladder. *)
let sdga_sra ?(refine = true) ?(ctx = Ctx.default) inst =
  let deadline = ctx.Ctx.deadline in
  let checkpoint = ctx.Ctx.checkpoint in
  Option.iter
    (fun s ->
      s.Checkpoint.on_event (Checkpoint.Link_entered { link = "sdga+sra" }))
    checkpoint;
  let sink = Option.map (Checkpoint.with_link "sdga+sra") checkpoint in
  (* One gain matrix serves SDGA and the refinement; callers running the
     link repeatedly (retries) pass [ctx.gains] to reuse theirs. It is
     built over the bound objective's view so a transforming backend
     (Taxonomy) shares rows between the links too. *)
  let gm =
    match ctx.Ctx.gains with
    | Some g -> g
    | None ->
        Gain_matrix.create ~candidates:ctx.Ctx.candidates
          (Objective.view (Objective.bind ctx.Ctx.objective inst))
  in
  let link_ctx ?deadline ?resume ?rng () =
    {
      Ctx.default with
      Ctx.deadline;
      rng;
      gains = Some gm;
      candidates = ctx.Ctx.candidates;
      checkpoint = sink;
      resume_from = Option.map Result.ok resume;
      pool = ctx.Ctx.pool;
      objective = ctx.Ctx.objective;
    }
  in
  let fresh_rng () = Ctx.rng_or ~seed:0 ctx in
  (* Only a certified state stamped with this link resumes it; anything
     else (another link's state, a loader rejection) means fresh. *)
  let resume_state =
    match ctx.Ctx.resume_from with
    | Some (Ok ({ Checkpoint.link = "sdga+sra"; _ } as st)) -> Some st
    | _ -> None
  in
  let refine_from ?resume ~rng a =
    let sctx = link_ctx ?deadline ?resume ~rng () in
    match resume with
    | None when Ctx.jobs sctx > 1 ->
        (* Fan the refinement out: independent chains, one per job,
           best chain wins. Deterministic for a fixed (rng, jobs). *)
        Sra.refine_parallel ~ctx:sctx inst a
    | _ ->
        (* Sequential — always for a mid-SRA resume: a restored round
           sequence can only be replayed bit-exactly by the schedule
           that produced it, the single-chain one. *)
        Sra.refine ~ctx:sctx inst a
  in
  match resume_state with
  | Some ({ Checkpoint.phase = Checkpoint.Sra_round _; _ } as st) ->
      (* Interrupted mid-refinement: SDGA's work is inside [st]; the
         restored RNG words make the remaining rounds replay the
         uninterrupted run exactly. *)
      if not refine then st.Checkpoint.best
      else
        let rng =
          match st.Checkpoint.rng with
          | Some w -> Wgrap_util.Rng.of_words w
          | None -> fresh_rng ()
        in
        refine_from ~resume:st ~rng st.Checkpoint.best
  | resume ->
      (* Fresh, or interrupted mid-SDGA (phase [Sdga_stage]): the
         stage loop re-enters after the committed stages and the
         refinement starts from the same seed either way. *)
      (* SDGA gets half the remaining budget; refinement, which
         improves monotonically and can stop at any round, soaks up
         the rest. *)
      let sdga_slice = if refine then slice 0.5 deadline else deadline in
      let a = Sdga.solve ~ctx:(link_ctx ?deadline:sdga_slice ?resume ()) inst in
      if (not refine) || Timer.expired_opt deadline then a
      else refine_from ~rng:(fresh_rng ()) a

(* The bare primary link for non-submodular objectives (OWA): SDGA's
   stage-confinement guarantee rests on Lemma 4's submodularity, so the
   seed comes from the lazy greedy (valid for any monotone objective —
   it runs on raw coverage gains) and all objective-aware work happens
   in the SRA refinement, which makes no structural assumption. Same
   raise-on-failure contract as [sdga_sra]; link name "greedy+sra". *)
let greedy_sra ?(refine = true) ?(ctx = Ctx.default) inst =
  let deadline = ctx.Ctx.deadline in
  let checkpoint = ctx.Ctx.checkpoint in
  Option.iter
    (fun s ->
      s.Checkpoint.on_event (Checkpoint.Link_entered { link = "greedy+sra" }))
    checkpoint;
  let sink = Option.map (Checkpoint.with_link "greedy+sra") checkpoint in
  let gm =
    match ctx.Ctx.gains with
    | Some g -> g
    | None ->
        Gain_matrix.create ~candidates:ctx.Ctx.candidates
          (Objective.view (Objective.bind ctx.Ctx.objective inst))
  in
  let link_ctx ?deadline ?resume ?rng () =
    {
      Ctx.default with
      Ctx.deadline;
      rng;
      gains = Some gm;
      candidates = ctx.Ctx.candidates;
      checkpoint = sink;
      resume_from = Option.map Result.ok resume;
      pool = ctx.Ctx.pool;
      objective = ctx.Ctx.objective;
    }
  in
  let fresh_rng () = Ctx.rng_or ~seed:0 ctx in
  let resume_state =
    match ctx.Ctx.resume_from with
    | Some (Ok ({ Checkpoint.link = "greedy+sra"; _ } as st)) -> Some st
    | _ -> None
  in
  let refine_from ?resume ~rng a =
    let sctx = link_ctx ?deadline ?resume ~rng () in
    match resume with
    | None when Ctx.jobs sctx > 1 -> Sra.refine_parallel ~ctx:sctx inst a
    | _ -> Sra.refine ~ctx:sctx inst a
  in
  match resume_state with
  | Some ({ Checkpoint.phase = Checkpoint.Sra_round _; _ } as st) ->
      (* The greedy seed leaves no checkpoint phases of its own, so any
         resumable state is mid-refinement; restored RNG words replay
         the remaining rounds exactly. *)
      if not refine then st.Checkpoint.best
      else
        let rng =
          match st.Checkpoint.rng with
          | Some w -> Wgrap_util.Rng.of_words w
          | None -> fresh_rng ()
        in
        refine_from ~resume:st ~rng st.Checkpoint.best
  | _ ->
      (* The greedy seed is cheap next to the refinement; give it a
         smaller slice than SDGA gets in [sdga_sra]. *)
      let seed_slice = if refine then slice 0.3 deadline else deadline in
      let a = Greedy.solve ~ctx:(link_ctx ?deadline:seed_slice ()) inst in
      if (not refine) || Timer.expired_opt deadline then a
      else refine_from ~rng:(fresh_rng ()) a

let cra ?(refine = true) ?(ctx = Ctx.default) inst =
  let deadline = ctx.Ctx.deadline in
  let checkpoint = ctx.Ctx.checkpoint in
  let resume_from = ctx.Ctx.resume_from in
  let rev_reasons = ref [] in
  let push r =
    rev_reasons := r :: !rev_reasons;
    notify ctx r
  in
  (* A rejected checkpoint (corrupt, stale, failed certification) never
     poisons the answer: the run degrades to fresh with the loader's
     verdict carried as a machine-readable reason. *)
  let resume_state =
    match resume_from with
    | None -> None
    | Some (Ok st) -> Some st
    | Some (Error msg) ->
        push (Stale_checkpoint { error = msg });
        None
  in
  let resume_link =
    match resume_state with Some st -> st.Checkpoint.link | None -> ""
  in
  let sink_for link = Option.map (Checkpoint.with_link link) checkpoint in
  let enter link =
    Option.iter
      (fun s -> s.Checkpoint.on_event (Checkpoint.Link_entered { link }))
      checkpoint
  in
  (* Accept a candidate only if it passes full validation; a truncated
     run that left short groups gets one shot at greedy completion. *)
  let checked link a =
    match Assignment.validate inst a with
    | Ok () -> Some a
    | Error msg -> (
        match Repair.complete inst a with
        | () -> (
            match Assignment.validate inst a with
            | Ok () ->
                push (Fault { link; error = "repaired: " ^ msg });
                Some a
            | Error msg' ->
                push (Fault { link; error = msg' });
                None)
        | exception e ->
            push (Fault { link; error = exn_message e });
            None)
  in
  let run link f =
    match f () with
    | a ->
        let out = checked link a in
        if Option.is_some out && Timer.expired_opt deadline then
          push (Timeout { link });
        out
    | exception Timer.Expired ->
        push (Timeout { link });
        None
    | exception e ->
        push (Fault { link; error = exn_message e });
        None
  in
  (* One gain matrix serves the whole chain: the primary link fills it,
     SRA reuses its cached score matrix, Eq. 9 column sums and
     surviving rows, and the fallback links reset it on entry. Built
     over the bound objective's view (Taxonomy smooths reviewers). *)
  let gm =
    match ctx.Ctx.gains with
    | Some g -> g
    | None ->
        Gain_matrix.create ~candidates:ctx.Ctx.candidates
          (Objective.view (Objective.bind ctx.Ctx.objective inst))
  in
  (* A sub-context for one link: the chain's deadline/pool/objective
     plus the link's own sink and resume state. Never the chain's
     [on_degrade] (the chain itself reports via [push]) and never its
     [rng] (each path below decides the generator explicitly). *)
  let link_ctx ?deadline ?sink ?resume ?rng () =
    {
      Ctx.default with
      Ctx.deadline;
      rng;
      gains = Some gm;
      (* Redundant while [gains] is set, but links that spawn private
         matrices from a context (future ones included) should inherit
         the chain's pruning width rather than silently go dense. *)
      candidates = ctx.Ctx.candidates;
      checkpoint = sink;
      resume_from = Option.map Result.ok resume;
      pool = ctx.Ctx.pool;
      objective = ctx.Ctx.objective;
    }
  in
  (* The ladder is routed by the objective's structure: SDGA may lead
     only when the spec is submodular and monotone (Lemma 4 is what its
     stage-confinement guarantee rests on); otherwise the primary is the
     greedy-seeded refinement and SDGA is skipped entirely. *)
  let sdga_safe =
    Objective.submodular ctx.Ctx.objective
    && Objective.monotone ctx.Ctx.objective
  in
  let primary_name = if sdga_safe then "sdga+sra" else "greedy+sra" in
  (* The primary link is the shared [sdga_sra]/[greedy_sra], handed the
     chain's gain matrix, raw sink and (already Error-stripped) resume
     state; it re-emits Link_entered and stamps its own sink link. *)
  let primary () =
    (if sdga_safe then sdga_sra else greedy_sra)
      ~refine
      ~ctx:
        {
          Ctx.default with
          Ctx.deadline;
          rng = ctx.Ctx.rng;
          gains = Some gm;
          candidates = ctx.Ctx.candidates;
          checkpoint;
          resume_from = Option.map Result.ok resume_state;
          pool = ctx.Ctx.pool;
          objective = ctx.Ctx.objective;
        }
      inst
  in
  let sdga_alone () =
    enter "sdga";
    let resume =
      match resume_state with
      | Some ({ Checkpoint.link = "sdga"; _ } as st) -> Some st
      | _ -> None
    in
    Sdga.solve
      ~ctx:(link_ctx ?deadline ?sink:(sink_for "sdga") ?resume ())
      inst
  in
  let greedy () =
    enter "greedy";
    Greedy.solve ~ctx:(link_ctx ?deadline ()) inst
  in
  (* A resumed run re-enters the chain at the link that was interrupted
     instead of re-running (and possibly re-faulting on) earlier links. *)
  let result =
    let from_primary () =
      match run primary_name primary with
      | Some a -> Some a
      | None when sdga_safe -> (
          match run "sdga" sdga_alone with
          | Some a -> Some a
          | None -> run "greedy" greedy)
      | None -> run "greedy" greedy
    in
    match resume_link with
    | "sdga" when sdga_safe -> (
        match run "sdga" sdga_alone with
        | Some a -> Some a
        | None -> run "greedy" greedy)
    | "greedy" -> run "greedy" greedy
    | _ -> from_primary ()
  in
  match result with
  | Some a -> (
      match List.rev !rev_reasons with
      | [] -> Complete a
      | rs -> Degraded (a, rs))
  | None ->
      let detail =
        match !rev_reasons with
        | Fault { error; _ } :: _ -> ": " ^ error
        | _ -> ""
      in
      Infeasible ("every CRA link failed to produce a valid assignment" ^ detail)
