module Timer = Wgrap_util.Timer

type reason =
  | Timeout of { link : string }
  | Fault of { link : string; error : string }
  | Stale_checkpoint of { error : string }

type 'a outcome =
  | Complete of 'a
  | Degraded of 'a * reason list
  | Infeasible of string

let value = function
  | Complete a | Degraded (a, _) -> Some a
  | Infeasible _ -> None

let status = function
  | Complete _ -> "complete"
  | Degraded _ -> "degraded"
  | Infeasible _ -> "infeasible"

let reasons = function
  | Complete _ | Infeasible _ -> []
  | Degraded (_, rs) -> rs

let pp_reason ppf = function
  | Timeout { link } -> Format.fprintf ppf "%s: deadline expired" link
  | Fault { link; error } -> Format.fprintf ppf "%s: %s" link error
  | Stale_checkpoint { error } ->
      Format.fprintf ppf "checkpoint: discarded (%s); ran fresh" error

(* A fresh deadline covering [frac] of what remains of [d]. Sub-budgets
   are real deadlines of their own so a link cannot starve its
   successors, while the outer deadline stays the hard stop. *)
let slice frac = function
  | None -> None
  | Some d -> Some (Timer.deadline (frac *. Timer.remaining d))

(* The exception text stored in [Fault]: message plus, when the runtime
   is recording them, the raised backtrace — a degraded run must be
   debuggable from the stderr summary alone. Callers invoke this first
   thing in an exception handler, before anything can overwrite the
   global backtrace slot. *)
let describe_exn e =
  let msg = match e with Failure m -> m | e -> Printexc.to_string e in
  if Printexc.backtrace_status () then
    match String.trim (Printexc.get_backtrace ()) with
    | "" -> msg
    | bt -> msg ^ "\n" ^ bt
  else msg

let exn_message = describe_exn

(* {1 JRA chain: ILP -> BBA -> greedy} *)

let jra ?budget problem =
  let deadline = Option.map Timer.deadline budget in
  let rev_reasons = ref [] in
  let push r = rev_reasons := r :: !rev_reasons in
  let best = ref None in
  let consider (sol : Jra.solution) =
    match !best with
    | Some (b : Jra.solution) when b.score >= sol.score -> ()
    | _ -> best := Some sol
  in
  let ilp_exact =
    match Jra_ilp.solve ?deadline:(slice 0.5 deadline) problem with
    | Jra_ilp.Solved sol ->
        consider sol;
        true
    | Jra_ilp.Timed_out incumbent ->
        Option.iter consider incumbent;
        push (Timeout { link = "jra-ilp" });
        false
    | exception e ->
        push (Fault { link = "jra-ilp"; error = exn_message e });
        false
  in
  let bba_exact =
    ilp_exact
    ||
    match Jra_bba.solve ?deadline problem with
    | sol ->
        consider sol;
        if Timer.expired_opt deadline then begin
          push (Timeout { link = "jra-bba" });
          false
        end
        else true
    | exception e ->
        push (Fault { link = "jra-bba"; error = exn_message e });
        false
  in
  if !best = None then begin
    match Jra.greedy problem with
    | sol -> consider sol
    | exception e -> push (Fault { link = "jra-greedy"; error = exn_message e })
  end;
  match !best with
  | None -> Infeasible "every JRA link failed to produce a group"
  | Some sol ->
      if bba_exact then Complete sol
      else Degraded (sol, List.rev !rev_reasons)

(* {1 CRA chain: SDGA + SRA -> SDGA -> per-stage greedy} *)

let cra ?budget ?(seed = 0) ?(refine = true) ?checkpoint ?resume_from inst =
  let deadline = Option.map Timer.deadline budget in
  let rev_reasons = ref [] in
  let push r = rev_reasons := r :: !rev_reasons in
  (* A rejected checkpoint (corrupt, stale, failed certification) never
     poisons the answer: the run degrades to fresh with the loader's
     verdict carried as a machine-readable reason. *)
  let resume_state =
    match resume_from with
    | None -> None
    | Some (Ok st) -> Some st
    | Some (Error msg) ->
        push (Stale_checkpoint { error = msg });
        None
  in
  let resume_link =
    match resume_state with Some st -> st.Checkpoint.link | None -> ""
  in
  let sink_for link = Option.map (Checkpoint.with_link link) checkpoint in
  let enter link =
    Option.iter
      (fun s -> s.Checkpoint.on_event (Checkpoint.Link_entered { link }))
      checkpoint
  in
  (* Accept a candidate only if it passes full validation; a truncated
     run that left short groups gets one shot at greedy completion. *)
  let checked link a =
    match Assignment.validate inst a with
    | Ok () -> Some a
    | Error msg -> (
        match Repair.complete inst a with
        | () -> (
            match Assignment.validate inst a with
            | Ok () ->
                push (Fault { link; error = "repaired: " ^ msg });
                Some a
            | Error msg' ->
                push (Fault { link; error = msg' });
                None)
        | exception e ->
            push (Fault { link; error = exn_message e });
            None)
  in
  let run link f =
    match f () with
    | a ->
        let out = checked link a in
        if Option.is_some out && Timer.expired_opt deadline then
          push (Timeout { link });
        out
    | exception Timer.Expired ->
        push (Timeout { link });
        None
    | exception e ->
        push (Fault { link; error = exn_message e });
        None
  in
  (* One gain matrix serves the whole chain: SDGA fills it stage by
     stage, SRA reuses its cached score matrix, Eq. 9 column sums and
     surviving rows, and the fallback links reset it on entry. *)
  let gm = Gain_matrix.create inst in
  let primary () =
    enter "sdga+sra";
    let sink = sink_for "sdga+sra" in
    let fresh_rng () = Wgrap_util.Rng.create seed in
    let refine_from ?resume_from ~rng a =
      Sra.refine ?deadline ~gains:gm ?checkpoint:sink ?resume_from ~rng inst a
    in
    match resume_state with
    | Some ({ Checkpoint.link = "sdga+sra"; phase = Checkpoint.Sra_round _; _ }
            as st) ->
        (* Interrupted mid-refinement: SDGA's work is inside [st]; the
           restored RNG words make the remaining rounds replay the
           uninterrupted run exactly. *)
        if not refine then st.Checkpoint.best
        else
          let rng =
            match st.Checkpoint.rng with
            | Some w -> Wgrap_util.Rng.of_words w
            | None -> fresh_rng ()
          in
          refine_from ~resume_from:st ~rng st.Checkpoint.best
    | resumed ->
        (* Fresh, or interrupted mid-SDGA (phase [Sdga_stage]): the
           stage loop re-enters after the committed stages and the
           refinement starts from the same seed either way. *)
        let resume_from =
          match resumed with
          | Some ({ Checkpoint.link = "sdga+sra"; _ } as st) -> Some st
          | _ -> None
        in
        (* SDGA gets half the remaining budget; refinement, which
           improves monotonically and can stop at any round, soaks up
           the rest. *)
        let sdga_slice = if refine then slice 0.5 deadline else deadline in
        let a =
          Sdga.solve ?deadline:sdga_slice ~gains:gm ?checkpoint:sink
            ?resume_from inst
        in
        if (not refine) || Timer.expired_opt deadline then a
        else refine_from ~rng:(fresh_rng ()) a
  in
  let sdga_alone () =
    enter "sdga";
    let resume_from =
      match resume_state with
      | Some ({ Checkpoint.link = "sdga"; _ } as st) -> Some st
      | _ -> None
    in
    Sdga.solve ?deadline ~gains:gm ?checkpoint:(sink_for "sdga") ?resume_from
      inst
  in
  let greedy () =
    enter "greedy";
    Greedy.solve ?deadline ~gains:gm inst
  in
  (* A resumed run re-enters the chain at the link that was interrupted
     instead of re-running (and possibly re-faulting on) earlier links. *)
  let result =
    let from_primary () =
      match run "sdga+sra" primary with
      | Some a -> Some a
      | None -> (
          match run "sdga" sdga_alone with
          | Some a -> Some a
          | None -> run "greedy" greedy)
    in
    match resume_link with
    | "sdga" -> (
        match run "sdga" sdga_alone with
        | Some a -> Some a
        | None -> run "greedy" greedy)
    | "greedy" -> run "greedy" greedy
    | _ -> from_primary ()
  in
  match result with
  | Some a -> (
      match List.rev !rev_reasons with
      | [] -> Complete a
      | rs -> Degraded (a, rs))
  | None ->
      let detail =
        match !rev_reasons with
        | Fault { error; _ } :: _ -> ": " ^ error
        | _ -> ""
      in
      Infeasible ("every CRA link failed to produce a valid assignment" ^ detail)
