type kind =
  | Weighted_coverage
  | Reviewer_coverage
  | Paper_coverage
  | Dot_product

let all = [ Weighted_coverage; Reviewer_coverage; Paper_coverage; Dot_product ]

let name = function
  | Weighted_coverage -> "c"
  | Reviewer_coverage -> "cR"
  | Paper_coverage -> "cP"
  | Dot_product -> "cD"

let contribution kind v p =
  match kind with
  | Weighted_coverage -> Float.min v p
  | Reviewer_coverage -> if v >= p then v else 0.
  | Paper_coverage -> if v >= p then p else 0.
  | Dot_product -> v *. p

let score kind v paper =
  if Array.length v <> Array.length paper then
    invalid_arg "Scoring.score: dimension mismatch";
  let num = ref 0. and den = ref 0. in
  Array.iteri
    (fun t p ->
      num := !num +. contribution kind v.(t) p;
      den := !den +. p)
    paper;
  if !den <= 0. then 0. else !num /. !den

let group_score kind group paper = score kind (Topic_vector.group_max group) paper

let gain kind ~group r paper =
  if Array.length group <> Array.length paper || Array.length r <> Array.length paper
  then invalid_arg "Scoring.gain: dimension mismatch";
  let delta = ref 0. and den = ref 0. in
  Array.iteri
    (fun t p ->
      let g = group.(t) in
      let extended = Float.max g r.(t) in
      delta := !delta +. contribution kind extended p -. contribution kind g p;
      den := !den +. p)
    paper;
  if !den <= 0. then 0. else !delta /. !den

let empty_group ~dim = Array.make dim 0.

(* {1 Sparse kernels}

   All four scoring kinds have the shape
   [(sum_t f(v[t], p[t])) / (sum_t p[t])]. For Weighted_coverage,
   Paper_coverage and Dot_product, [f(v, 0) = 0] exactly, so summing
   only over the paper's support reproduces the dense sum bit for bit
   (the dense loop adds exact zeros elsewhere, and [support.mass] is
   accumulated in dense coordinate order). Reviewer_coverage is the
   exception: [f(v, 0) = v] whenever [v >= 0], so the off-support
   reviewer mass contributes — it is folded back in closed form from
   the precompiled masses, which reassociates the sum (agreement with
   the dense oracle is then ~1e-15 relative, not bitwise). *)

let score_sparse kind ~v ~v_mass (p : Topic_vector.support) =
  let idx = p.Topic_vector.idx and nz = p.Topic_vector.nz in
  let num = ref 0. in
  (match kind with
  | Reviewer_coverage ->
      (* Track the reviewer mass inside the support; the rest of the
         reviewer mass sits on topics where the paper is 0 and counts
         in full ([f(v, 0) = v]). *)
      let inside = ref 0. in
      for k = 0 to Array.length idx - 1 do
        let x = v.(idx.(k)) in
        num := !num +. contribution kind x nz.(k);
        inside := !inside +. x
      done;
      num := !num +. (v_mass -. !inside)
  | Weighted_coverage | Paper_coverage | Dot_product ->
      for k = 0 to Array.length idx - 1 do
        num := !num +. contribution kind v.(idx.(k)) nz.(k)
      done);
  if p.Topic_vector.mass <= 0. then 0. else !num /. p.Topic_vector.mass

let gain_sparse kind ~group (r : Topic_vector.support)
    (p : Topic_vector.support) =
  let idx = p.Topic_vector.idx and nz = p.Topic_vector.nz in
  let rvec = r.Topic_vector.vec in
  let delta = ref 0. in
  for k = 0 to Array.length idx - 1 do
    let t = idx.(k) in
    let pv = nz.(k) in
    let g = group.(t) in
    let extended = Float.max g rvec.(t) in
    delta := !delta +. contribution kind extended pv -. contribution kind g pv
  done;
  (match kind with
  | Reviewer_coverage ->
      (* Off the paper's support, f(v, 0) = v: extending the group
         changes the sum wherever the reviewer exceeds it, which can
         only happen on the reviewer's own support. *)
      let ridx = r.Topic_vector.idx and rnz = r.Topic_vector.nz in
      let pvec = p.Topic_vector.vec in
      for k = 0 to Array.length ridx - 1 do
        let t = ridx.(k) in
        if pvec.(t) <= 0. then begin
          let d = rnz.(k) -. group.(t) in
          if d > 0. then delta := !delta +. d
        end
      done
  | Weighted_coverage | Paper_coverage | Dot_product -> ());
  if p.Topic_vector.mass <= 0. then 0. else !delta /. p.Topic_vector.mass

let score_into kind ~dst ~reviewers (p : Topic_vector.support) =
  if Array.length dst <> Array.length reviewers then
    invalid_arg "Scoring.score_into: dst length mismatch";
  for r = 0 to Array.length reviewers - 1 do
    let rs = reviewers.(r) in
    dst.(r) <-
      score_sparse kind ~v:rs.Topic_vector.vec ~v_mass:rs.Topic_vector.mass p
  done

let gain_into kind ~dst ~group ~reviewers (p : Topic_vector.support) =
  if Array.length dst <> Array.length reviewers then
    invalid_arg "Scoring.gain_into: dst length mismatch";
  for r = 0 to Array.length reviewers - 1 do
    dst.(r) <- gain_sparse kind ~group reviewers.(r) p
  done

let group_score_sparse kind vecs (p : Topic_vector.support) =
  match kind with
  | Reviewer_coverage ->
      (* Off-support reviewer mass counts; no sparse shortcut without a
         maintained group mass — defer to the dense oracle. *)
      score kind (Topic_vector.group_max vecs) p.Topic_vector.vec
  | Weighted_coverage | Paper_coverage | Dot_product ->
      if vecs = [] then invalid_arg "Scoring.group_score_sparse: empty group";
      let idx = p.Topic_vector.idx and nz = p.Topic_vector.nz in
      let num = ref 0. in
      for k = 0 to Array.length idx - 1 do
        let t = idx.(k) in
        let v = List.fold_left (fun acc m -> Float.max acc m.(t)) 0. vecs in
        num := !num +. contribution kind v nz.(k)
      done;
      if p.Topic_vector.mass <= 0. then 0. else !num /. p.Topic_vector.mass
