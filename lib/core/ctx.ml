module Timer = Wgrap_util.Timer
module Rng = Wgrap_util.Rng
module Pool = Wgrap_par.Pool

type degrade = { link : string; detail : string }

type t = {
  deadline : Timer.deadline option;
  rng : Rng.t option;
  gains : Gain_matrix.t option;
  candidates : int;
  checkpoint : Checkpoint.sink option;
  resume_from : (Checkpoint.state, string) result option;
  pool : Pool.t option;
  on_degrade : (degrade -> unit) option;
  objective : Objective.spec;
}

let default =
  {
    deadline = None;
    rng = None;
    gains = None;
    candidates = 0;
    checkpoint = None;
    resume_from = None;
    pool = None;
    on_degrade = None;
    objective = Objective.coverage;
  }

let with_deadline d t = { t with deadline = Some d }
let with_budget s t = { t with deadline = Some (Timer.deadline s) }
let with_rng rng t = { t with rng = Some rng }
let with_seed seed t = { t with rng = Some (Rng.create seed) }
let with_gains g t = { t with gains = Some g }

let with_candidates k t =
  if k < 0 then invalid_arg "Ctx.with_candidates: k must be >= 0";
  { t with candidates = k }
let with_checkpoint sink t = { t with checkpoint = Some sink }
let with_resume r t = { t with resume_from = Some r }
let with_pool p t = { t with pool = Some p }
let with_jobs jobs t = { t with pool = Some (Pool.create ~jobs) }
let with_on_degrade f t = { t with on_degrade = Some f }
let with_objective o t = { t with objective = o }

let make ?deadline ?budget ?rng ?seed ?gains ?(candidates = 0) ?checkpoint
    ?resume_from ?pool ?jobs ?on_degrade ?(objective = Objective.coverage) () =
  if candidates < 0 then invalid_arg "Ctx.make: candidates must be >= 0";
  {
    deadline =
      (match (deadline, budget) with
      | (Some _ as d), _ -> d
      | None, Some s -> Some (Timer.deadline s)
      | None, None -> None);
    rng =
      (match (rng, seed) with
      | (Some _ as r), _ -> r
      | None, Some s -> Some (Rng.create s)
      | None, None -> None);
    gains;
    candidates;
    checkpoint;
    resume_from;
    pool =
      (match (pool, jobs) with
      | (Some _ as p), _ -> p
      | None, Some j -> Some (Pool.create ~jobs:j)
      | None, None -> None);
    on_degrade;
    objective;
  }

let rng_or ~seed t = match t.rng with Some r -> r | None -> Rng.create seed
let jobs t = match t.pool with Some p -> Pool.jobs p | None -> 1

let notify_degrade t ~link ~detail =
  match t.on_degrade with
  | None -> ()
  | Some f ->
      (* An observer is telemetry; a solve must not change outcome
         because a progress callback blew up. *)
      (try f { link; detail } with _ -> ()) [@wgrap.allow "silent-catch"]
