let default_gain ~paper:_ ~reviewer:_ ~coverage_gain = coverage_gain

(* Pair value for the stage, or [forbidden] when the pair may not be
   used this stage. *)
let stage_score pair_gain inst ~capacity ~group_vecs ~members p r =
  if
    capacity.(r) = 0
    || List.mem r members
    || Instance.forbidden inst ~paper:p ~reviewer:r
  then Lap.Hungarian.forbidden
  else begin
    let coverage_gain =
      Scoring.gain inst.Instance.scoring ~group:group_vecs
        inst.Instance.reviewers.(r) inst.Instance.papers.(p)
    in
    pair_gain ~paper:p ~reviewer:r ~coverage_gain
  end
[@@inline]

let paper_array ?papers inst =
  match papers with
  | Some l -> Array.of_list l
  | None -> Array.init (Instance.n_papers inst) Fun.id

let solve ?papers ?(pair_gain = default_gain) ?deadline inst ~current ~capacity =
  let n_r = Instance.n_reviewers inst in
  if Array.length capacity <> n_r then
    invalid_arg "Stage.solve: capacity length mismatch";
  let paper_list = paper_array ?papers inst in
  let rows = Array.length paper_list in
  if rows = 0 then []
  else begin
    (* One column per remaining capacity unit; [owner] maps back. *)
    let owner = ref [] in
    for r = n_r - 1 downto 0 do
      if capacity.(r) < 0 then invalid_arg "Stage.solve: negative capacity";
      for _ = 1 to capacity.(r) do
        owner := r :: !owner
      done
    done;
    let owner = Array.of_list !owner in
    let cols = Array.length owner in
    if cols < rows then failwith "Stage.solve: infeasible stage";
    let score =
      Array.map
        (fun p ->
          let group_vecs = Assignment.group_vector inst current p in
          let members = Assignment.group current p in
          (* Replicated columns of a reviewer share one value; compute
             each reviewer once. *)
          let per_reviewer =
            Array.init n_r (fun r ->
                stage_score pair_gain inst ~capacity ~group_vecs
                  ~members p r)
          in
          Array.map (fun r -> per_reviewer.(r)) owner)
        paper_list
    in
    match Lap.Hungarian.maximize ?deadline score with
    | cols_of_rows, _ ->
        Array.to_list
          (Array.mapi (fun i c -> (paper_list.(i), owner.(c))) cols_of_rows)
    | exception Failure _ -> failwith "Stage.solve: infeasible stage"
  end

let solve_flow ?papers ?(pair_gain = default_gain) ?deadline inst ~current
    ~capacity =
  let n_r = Instance.n_reviewers inst in
  if Array.length capacity <> n_r then
    invalid_arg "Stage.solve: capacity length mismatch";
  let paper_list = paper_array ?papers inst in
  let rows = Array.length paper_list in
  if rows = 0 then []
  else begin
    let score =
      Array.map
        (fun p ->
          let group_vecs = Assignment.group_vector inst current p in
          let members = Assignment.group current p in
          Array.init n_r (fun r ->
              stage_score pair_gain inst ~capacity ~group_vecs
                ~members p r))
        paper_list
    in
    let chosen =
      try
        Lap.Mcmf.transportation ?deadline ~row_supply:(Array.make rows 1)
          ~col_capacity:capacity score
      with Failure _ -> failwith "Stage.solve: infeasible stage"
    in
    let pairs = ref [] in
    Array.iteri
      (fun i rs ->
        match rs with
        | [ r ] -> pairs := (paper_list.(i), r) :: !pairs
        | _ -> failwith "Stage.solve: infeasible stage")
      chosen;
    List.rev !pairs
  end
