module Timer = Wgrap_util.Timer

let default_gain ~paper:_ ~reviewer:_ ~coverage_gain = coverage_gain

let paper_array ?papers inst =
  match papers with
  | Some l -> Array.of_list l
  | None -> Array.init (Instance.n_papers inst) Fun.id

(* Shared row builder: raw marginal gains for paper [p] against every
   reviewer (from the shared gain matrix when given, else computed
   directly with the sparse kernel into [raw]), then masked in place —
   exhausted capacity, current group members (a [bool array] mask, set
   and cleared around the row instead of a per-cell list scan) and COI
   pairs become [forbidden] — and passed through [pair_gain]. *)
let fill_row pair_gain inst ~gains ~capacity ~mask ~raw ~current p =
  let n_r = Instance.n_reviewers inst in
  let members = Assignment.group current p in
  (match gains with
  | Some gm -> Gain_matrix.blit_row gm ~paper:p ~dst:raw
  | None ->
      let group_vec = Assignment.group_vector inst current p in
      Scoring.gain_into inst.Instance.scoring ~dst:raw ~group:group_vec
        ~reviewers:inst.Instance.rsupp
        (Instance.paper_support inst p));
  List.iter (fun r -> mask.(r) <- true) members;
  for r = 0 to n_r - 1 do
    if capacity.(r) = 0 || mask.(r) || Instance.forbidden inst ~paper:p ~reviewer:r
    then raw.(r) <- Lap.Hungarian.forbidden
    else raw.(r) <- pair_gain ~paper:p ~reviewer:r ~coverage_gain:raw.(r)
  done;
  List.iter (fun r -> mask.(r) <- false) members

(* {1 Candidate-pruned backend}

   When the shared matrix is candidate-pruned, the stage never
   materializes an [rows x n_r] score matrix: the edge set is each
   paper's candidate list, masked exactly like [fill_row] masks a dense
   row. Small stages still solve exactly — the Hungarian algorithm on a
   compact matrix over just the reviewers the edges touch — so at the
   paper's evaluation scale the pruned stage is stage-optimal within
   the candidate set. Past a work gate (where a Hungarian run would
   dwarf edge collection) the stage falls back to greedy descending-
   gain matching, with a per-paper full scan ({!Gain_matrix.gain}, any
   reviewer) only for papers the candidate edges could not place, and
   [Failure] only when no reviewer at all has capacity left. *)

type edge = { value : float; row : int; reviewer : int }

(* Deterministic matching preference: higher value first, then the
   earlier paper, then the lower reviewer id. *)
let edge_compare a b =
  match Float.compare b.value a.value with
  | 0 -> (
      match Int.compare a.row b.row with
      | 0 -> Int.compare a.reviewer b.reviewer
      | c -> c)
  | c -> c

(* A compact Hungarian run costs ~rows^2 * cols; keep it under the gate
   so a pruned stage is never slower than its own edge collection. *)
let hungarian_work_gate = 100_000_000

let collect_edges pair_gain gm ?deadline inst ~paper_list ~current ~capacity =
  let n_r = Instance.n_reviewers inst in
  let mask = Array.make n_r false in
  let edges = ref [] in
  Array.iteri
    (fun i p ->
      Timer.check_opt deadline;
      let members = Assignment.group current p in
      List.iter (fun r -> mask.(r) <- true) members;
      Gain_matrix.iter_row gm ~paper:p (fun ~reviewer:r ~gain ->
          if
            capacity.(r) > 0 && (not mask.(r))
            && not (Instance.forbidden inst ~paper:p ~reviewer:r)
          then
            edges :=
              { value = pair_gain ~paper:p ~reviewer:r ~coverage_gain:gain;
                row = i;
                reviewer = r }
              :: !edges);
      List.iter (fun r -> mask.(r) <- false) members)
    paper_list;
  Array.of_list !edges

(* Exact assignment over the candidate edges: Hungarian on a matrix
   whose columns are the capacity units of just the reviewers any edge
   touches. Returns [None] when the edge set cannot cover every paper
   (the greedy path then tries its full-scan completion). *)
let compact_hungarian ?deadline ~rows ~capacity edges =
  let module IM = Map.Make (Int) in
  let touched =
    Array.fold_left (fun m e -> IM.add e.reviewer () m) IM.empty edges
  in
  let owner = ref [] in
  IM.iter
    (fun r () ->
      for _ = 1 to min capacity.(r) rows do
        owner := r :: !owner
      done)
    touched;
  let owner = Array.of_list (List.rev !owner) in
  let cols = Array.length owner in
  if cols < rows then None
  else begin
    let col_of = Hashtbl.create (Array.length owner) in
    Array.iteri
      (fun c r -> if not (Hashtbl.mem col_of r) then Hashtbl.add col_of r c)
      owner;
    let score =
      Array.init rows (fun _ -> Array.make cols Lap.Hungarian.forbidden)
    in
    Array.iter
      (fun e ->
        let c0 = Hashtbl.find col_of e.reviewer in
        let c = ref c0 in
        while !c < cols && owner.(!c) = e.reviewer do
          score.(e.row).(!c) <- e.value;
          incr c
        done)
      edges;
    match Lap.Hungarian.maximize ?deadline score with
    | cols_of_rows, _ -> Some (Array.map (fun c -> owner.(c)) cols_of_rows)
    | exception Failure _ -> None
  end

(* Greedy descending-gain matching over the candidate edges, then a
   full scan for any paper left over. *)
let greedy_matching ?deadline ~pair_gain ~gm ~paper_list ~capacity inst
    ~current edges =
  let rows = Array.length paper_list in
  let n_r = Instance.n_reviewers inst in
  Array.sort edge_compare edges;
  let chosen = Array.make rows (-1) in
  let left = Array.copy capacity in
  let unmatched = ref rows in
  Array.iter
    (fun e ->
      if !unmatched > 0 && chosen.(e.row) < 0 && left.(e.reviewer) > 0 then begin
        chosen.(e.row) <- e.reviewer;
        left.(e.reviewer) <- left.(e.reviewer) - 1;
        decr unmatched
      end)
    edges;
  if !unmatched > 0 then
    (* Completion: candidates could not place these papers (narrow
       support, or their candidates' capacity went to earlier papers).
       One full scan per leftover paper, exactly what {!Repair} would
       do later but stage-capacity-aware. *)
    Array.iteri
      (fun i p ->
        if chosen.(i) < 0 then begin
          Timer.check_opt deadline;
          let members = Assignment.group current p in
          let best = ref (-1) and best_value = ref neg_infinity in
          for r = 0 to n_r - 1 do
            if
              left.(r) > 0
              && (not (List.mem r members))
              && not (Instance.forbidden inst ~paper:p ~reviewer:r)
            then begin
              let value =
                pair_gain ~paper:p ~reviewer:r
                  ~coverage_gain:(Gain_matrix.gain gm ~paper:p ~reviewer:r)
              in
              if value > !best_value then begin
                best_value := value;
                best := r
              end
            end
          done;
          if !best < 0 then failwith "Stage.solve: infeasible stage";
          chosen.(i) <- !best;
          left.(!best) <- left.(!best) - 1
        end)
      paper_list;
  chosen

let solve_pruned ?(pair_gain = default_gain) ~gm ?deadline inst ~paper_list
    ~current ~capacity =
  let rows = Array.length paper_list in
  let edges =
    collect_edges pair_gain gm ?deadline inst ~paper_list ~current ~capacity
  in
  let units =
    (* Upper bound on compact columns without building them. *)
    Array.fold_left (fun acc c -> acc + min c rows) 0 capacity
  in
  let exact =
    rows * rows <= hungarian_work_gate / max 1 (min units (Array.length edges))
  in
  let chosen =
    let from_hungarian =
      if exact then compact_hungarian ?deadline ~rows ~capacity edges else None
    in
    match from_hungarian with
    | Some chosen -> chosen
    | None ->
        greedy_matching ?deadline ~pair_gain ~gm ~paper_list ~capacity inst
          ~current edges
  in
  Array.to_list (Array.mapi (fun i r -> (paper_list.(i), r)) chosen)

let solve ?papers ?(pair_gain = default_gain) ?gains ?deadline inst ~current
    ~capacity =
  let n_r = Instance.n_reviewers inst in
  if Array.length capacity <> n_r then
    invalid_arg "Stage.solve: capacity length mismatch";
  let paper_list = paper_array ?papers inst in
  let rows = Array.length paper_list in
  if rows = 0 then []
  else
    match gains with
    | Some gm when Gain_matrix.pruned gm ->
        solve_pruned ~pair_gain ~gm ?deadline inst ~paper_list ~current
          ~capacity
    | _ ->
        (* One column per remaining capacity unit; [owner] maps back. *)
        let owner = ref [] in
        for r = n_r - 1 downto 0 do
          if capacity.(r) < 0 then invalid_arg "Stage.solve: negative capacity";
          for _ = 1 to capacity.(r) do
            owner := r :: !owner
          done
        done;
        let owner = Array.of_list !owner in
        let cols = Array.length owner in
        if cols < rows then failwith "Stage.solve: infeasible stage";
        let mask = Array.make n_r false in
        let raw = Array.make n_r 0. in
        let score =
          Array.map
            (fun p ->
              Timer.check_opt deadline;
              fill_row pair_gain inst ~gains ~capacity ~mask ~raw ~current p;
              (* Replicated columns of a reviewer share one value. *)
              Array.map (fun r -> raw.(r)) owner)
            paper_list
        in
        (match Lap.Hungarian.maximize ?deadline score with
        | cols_of_rows, _ ->
            Array.to_list
              (Array.mapi (fun i c -> (paper_list.(i), owner.(c))) cols_of_rows)
        | exception Failure _ -> failwith "Stage.solve: infeasible stage")

let solve_flow ?papers ?(pair_gain = default_gain) ?gains ?deadline inst
    ~current ~capacity =
  let n_r = Instance.n_reviewers inst in
  if Array.length capacity <> n_r then
    invalid_arg "Stage.solve: capacity length mismatch";
  let paper_list = paper_array ?papers inst in
  let rows = Array.length paper_list in
  if rows = 0 then []
  else
    match gains with
    | Some gm when Gain_matrix.pruned gm ->
        (* Both backends share the candidate-pruned solver: the flow
           formulation's whole cost model assumes the dense matrix. *)
        solve_pruned ~pair_gain ~gm ?deadline inst ~paper_list ~current
          ~capacity
    | _ ->
        let mask = Array.make n_r false in
        let raw = Array.make n_r 0. in
        let score =
          Array.map
            (fun p ->
              Timer.check_opt deadline;
              fill_row pair_gain inst ~gains ~capacity ~mask ~raw ~current p;
              Array.copy raw)
            paper_list
        in
        let chosen =
          try
            Lap.Mcmf.transportation ?deadline ~row_supply:(Array.make rows 1)
              ~col_capacity:capacity score
          with Failure _ -> failwith "Stage.solve: infeasible stage"
        in
        let pairs = ref [] in
        Array.iteri
          (fun i rs ->
            match rs with
            | [ r ] -> pairs := (paper_list.(i), r) :: !pairs
            | _ -> failwith "Stage.solve: infeasible stage")
          chosen;
        List.rev !pairs
