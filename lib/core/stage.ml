let default_gain ~paper:_ ~reviewer:_ ~coverage_gain = coverage_gain

let paper_array ?papers inst =
  match papers with
  | Some l -> Array.of_list l
  | None -> Array.init (Instance.n_papers inst) Fun.id

(* Shared row builder: raw marginal gains for paper [p] against every
   reviewer (from the shared gain matrix when given, else computed
   directly with the sparse kernel into [raw]), then masked in place —
   exhausted capacity, current group members (a [bool array] mask, set
   and cleared around the row instead of a per-cell list scan) and COI
   pairs become [forbidden] — and passed through [pair_gain]. *)
let fill_row pair_gain inst ~gains ~capacity ~mask ~raw ~current p =
  let n_r = Instance.n_reviewers inst in
  let members = Assignment.group current p in
  (match gains with
  | Some gm -> Gain_matrix.blit_row gm ~paper:p ~dst:raw
  | None ->
      let group_vec = Assignment.group_vector inst current p in
      Scoring.gain_into inst.Instance.scoring ~dst:raw ~group:group_vec
        ~reviewers:inst.Instance.rsupp
        (Instance.paper_support inst p));
  List.iter (fun r -> mask.(r) <- true) members;
  for r = 0 to n_r - 1 do
    if capacity.(r) = 0 || mask.(r) || Instance.forbidden inst ~paper:p ~reviewer:r
    then raw.(r) <- Lap.Hungarian.forbidden
    else raw.(r) <- pair_gain ~paper:p ~reviewer:r ~coverage_gain:raw.(r)
  done;
  List.iter (fun r -> mask.(r) <- false) members

let solve ?papers ?(pair_gain = default_gain) ?gains ?deadline inst ~current
    ~capacity =
  let n_r = Instance.n_reviewers inst in
  if Array.length capacity <> n_r then
    invalid_arg "Stage.solve: capacity length mismatch";
  let paper_list = paper_array ?papers inst in
  let rows = Array.length paper_list in
  if rows = 0 then []
  else begin
    (* One column per remaining capacity unit; [owner] maps back. *)
    let owner = ref [] in
    for r = n_r - 1 downto 0 do
      if capacity.(r) < 0 then invalid_arg "Stage.solve: negative capacity";
      for _ = 1 to capacity.(r) do
        owner := r :: !owner
      done
    done;
    let owner = Array.of_list !owner in
    let cols = Array.length owner in
    if cols < rows then failwith "Stage.solve: infeasible stage";
    let mask = Array.make n_r false in
    let raw = Array.make n_r 0. in
    let score =
      Array.map
        (fun p ->
          fill_row pair_gain inst ~gains ~capacity ~mask ~raw ~current p;
          (* Replicated columns of a reviewer share one value. *)
          Array.map (fun r -> raw.(r)) owner)
        paper_list
    in
    match Lap.Hungarian.maximize ?deadline score with
    | cols_of_rows, _ ->
        Array.to_list
          (Array.mapi (fun i c -> (paper_list.(i), owner.(c))) cols_of_rows)
    | exception Failure _ -> failwith "Stage.solve: infeasible stage"
  end

let solve_flow ?papers ?(pair_gain = default_gain) ?gains ?deadline inst
    ~current ~capacity =
  let n_r = Instance.n_reviewers inst in
  if Array.length capacity <> n_r then
    invalid_arg "Stage.solve: capacity length mismatch";
  let paper_list = paper_array ?papers inst in
  let rows = Array.length paper_list in
  if rows = 0 then []
  else begin
    let mask = Array.make n_r false in
    let raw = Array.make n_r 0. in
    let score =
      Array.map
        (fun p ->
          fill_row pair_gain inst ~gains ~capacity ~mask ~raw ~current p;
          Array.copy raw)
        paper_list
    in
    let chosen =
      try
        Lap.Mcmf.transportation ?deadline ~row_supply:(Array.make rows 1)
          ~col_capacity:capacity score
      with Failure _ -> failwith "Stage.solve: infeasible stage"
    in
    let pairs = ref [] in
    Array.iteri
      (fun i rs ->
        match rs with
        | [ r ] -> pairs := (paper_list.(i), r) :: !pairs
        | _ -> failwith "Stage.solve: infeasible stage")
      chosen;
    List.rev !pairs
  end
