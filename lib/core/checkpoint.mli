(** Checkpoint contracts between the solver stack and a durable store.

    The solvers know nothing about files: {!Sdga.solve} and
    {!Sra.refine} accept a {!sink} of callbacks and offer it a
    {!state} at every natural cut point (each completed SDGA stage, each
    finished SRA round), plus fine-grained improvement {!event}s for a
    write-ahead journal. The durable implementation — atomic snapshot
    files, checksummed journal, crash recovery — lives in
    [Wgrap_persist], which depends on this module and not vice versa.

    A {!state} is everything needed to re-enter the solver chain at the
    captured point and reproduce the uninterrupted run bit for bit:
    the incumbent and working assignments (order-preserving, see
    {!Assignment.to_lines}), the SRA stall counter, the journaled
    incumbent objective, and the raw RNG words. *)

type phase =
  | Sdga_stage of int  (** [k] SDGA stages committed, [delta_p - k] to go *)
  | Sra_round of int  (** [k] SRA rounds finished *)

type state = {
  link : string;
      (** the {!Solver.cra} chain link that produced this state
          (["sdga+sra"] or ["sdga"]); a resumed run re-enters the chain
          there rather than restarting the full chain *)
  phase : phase;
  stall : int;  (** SRA non-improving-round counter; 0 for SDGA states *)
  score : float;
      (** objective of [best] at capture — the journaled incumbent a
          recovered run is certified against *)
  rng : int64 array option;
      (** {!Wgrap_util.Rng.words} at the round boundary; [None] for the
          deterministic SDGA phase *)
  best : Assignment.t;  (** best-so-far (partial while in SDGA) *)
  current : Assignment.t;
      (** SRA's working assignment; equal to [best] outside SRA and on
          improvement rounds *)
}

type event =
  | Stage_done of { stage : int; score : float }
      (** an SDGA stage committed its pairs *)
  | Round_improved of { round : int; score : float }
      (** an SRA round improved the incumbent *)
  | Link_entered of { link : string }
      (** {!Solver.cra} moved to a chain link *)

type sink = {
  on_event : event -> unit;  (** journal append; called at every event *)
  offer : (unit -> state) -> unit;
      (** a snapshot opportunity. The thunk builds the (copied) state
          only if the sink decides to take it — throttled sinks skip the
          copy cost entirely. Must not raise: a failing store disables
          itself rather than killing the solve. *)
}

val null : sink
(** Discards everything. *)

val with_link : string -> sink -> sink
(** Stamp every offered state with the given chain-link name —
    {!Solver.cra} wraps the caller's sink once per link. *)

val memory : unit -> sink * (unit -> event list) * (unit -> state list)
(** An in-memory sink that takes every offer, plus accessors for what it
    captured (in emission order) — the test harness's kill-point
    recorder. *)

val pp_phase : Format.formatter -> phase -> unit

val event_score : event -> float option
(** The incumbent objective an event journals, if any. *)
