(** Stochastic Refinement Algorithm (Section 4.4, Algorithm 3).

    Starting from an assignment (typically SDGA's), each round removes
    one reviewer from every paper — pair (r, p) is removed with
    probability proportional to [1 - P(r|p)], where Eq. 10 gives

    [P(r|p) = max(1/R, exp(-lambda * I) * c(r,p) / sum_p' c(r,p'))]

    (the TF-IDF-like Eq. 9 damped by an exponential decay in the round
    number I) — and refills every paper with one Stage-WGRAP linear
    assignment. The best assignment seen is tracked; the process stops
    when it has not improved for [omega] consecutive rounds (the paper's
    convergence threshold, default 10). *)

type params = {
  omega : int;  (** convergence threshold; paper default 10 *)
  lambda : float;  (** decay rate of Eq. 10; 0.05 by default *)
  max_rounds : int;  (** hard cap, safety net *)
}

val default_params : params

val refine :
  ?params:params ->
  ?deadline:Wgrap_util.Timer.deadline ->
  ?on_round:(round:int -> elapsed:float -> best:float -> unit) ->
  ?gains:Gain_matrix.t ->
  ?checkpoint:Checkpoint.sink ->
  ?resume_from:Checkpoint.state ->
  rng:Wgrap_util.Rng.t ->
  Instance.t ->
  Assignment.t ->
  Assignment.t
(** Returns the best assignment encountered (never worse than the
    input). [on_round] observes each round, for the refinement-over-time
    curves of Figures 12 and 16. [gains], when given, supplies the
    cached score matrix and Eq. 9 column sums and carries gain rows
    across rounds (its group state is rebuilt from scratch each round,
    so any prior state is acceptable — e.g. the matrix {!Sdga.solve}
    just used).

    [checkpoint] receives a {!Checkpoint.Round_improved} event on every
    improving round and a snapshot offer at every round boundary (best,
    current, stall counter, round number and live RNG words).
    [resume_from], when in phase {!Checkpoint.Sra_round}, overrides the
    [start] argument entirely: best/current/stall/round are restored
    from the state, and — provided the caller also restores [rng] from
    [state.rng] via {!Wgrap_util.Rng.of_words} — the refinement replays
    the uninterrupted run's remaining rounds exactly. A state in any
    other phase is ignored. *)

val column_denominators :
  n_reviewers:int -> score_matrix:float array array -> float array
(** The Eq. 9 denominators [sum_p' c(r, p')], COI cells excluded — the
    single source of truth (delegates to
    {!Gain_matrix.score_column_sums}), shared by {!refine},
    {!removal_probability} and the bid-aware refinement. *)

val keep_probability :
  n_reviewers:int ->
  denom:float array ->
  score_matrix:float array array ->
  round:int ->
  lambda:float ->
  paper:int ->
  reviewer:int ->
  float
(** Eq. 10 against a precomputed denominator array: the probability that
    pair (r, p) is {e correct} (high means keep). *)

val removal_probability :
  Instance.t ->
  score_matrix:float array array ->
  round:int ->
  lambda:float ->
  paper:int ->
  reviewer:int ->
  float
(** Eq. 10, exposed for unit tests: {!keep_probability} with the
    denominators recomputed on the fly — hot loops should precompute
    them once via {!column_denominators} instead. *)
