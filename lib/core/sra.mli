(** Stochastic Refinement Algorithm (Section 4.4, Algorithm 3).

    Starting from an assignment (typically SDGA's), each round removes
    one reviewer from every paper — pair (r, p) is removed with
    probability proportional to [1 - P(r|p)], where Eq. 10 gives

    [P(r|p) = max(1/R, exp(-lambda * I) * c(r,p) / sum_p' c(r,p'))]

    (the TF-IDF-like Eq. 9 damped by an exponential decay in the round
    number I) — and refills every paper with one Stage-WGRAP linear
    assignment. The best assignment seen is tracked; the process stops
    when it has not improved for [omega] consecutive rounds (the paper's
    convergence threshold, default 10). *)

type params = {
  omega : int;  (** convergence threshold; paper default 10 *)
  lambda : float;  (** decay rate of Eq. 10; 0.05 by default *)
  max_rounds : int;  (** hard cap, safety net *)
}

val default_params : params

val refine :
  ?params:params ->
  ?on_round:(round:int -> elapsed:float -> best:float -> unit) ->
  ?ctx:Ctx.t ->
  Instance.t ->
  Assignment.t ->
  Assignment.t
(** Returns the best assignment encountered (never worse than the
    input). [on_round] observes each round, for the refinement-over-time
    curves of Figures 12 and 16.

    Run environment comes from [ctx] ({!Ctx.default} when omitted):
    [ctx.rng] drives the removal sampling (a fresh seed-0 generator when
    unset); [ctx.deadline] is polled every round and inside the refill
    stage; [ctx.gains], when set, supplies the cached score matrix and
    Eq. 9 column sums and carries gain rows across rounds (its group
    state is rebuilt from scratch each round, so any prior state is
    acceptable — e.g. the matrix {!Sdga.solve} just used); otherwise a
    private matrix is created with [ctx.candidates] as its width. Member
    keep-probabilities recompute their scores on demand through the
    bound objective's coverage component (bit-identical to the old
    cached read path — delta_p pairs per paper per round); on a
    candidate-pruned matrix the Eq. 9 denominators stream and refill
    stages run the pruned {!Stage.solve} backend.

    [ctx.objective] is bound and consulted throughout: removal
    keep-probabilities use its pure coverage component
    ({!Objective.coverage_score} — removal models topical misfit),
    refill stages apply its {!Objective.stage_gain} transform, and
    acceptance/best-so-far tracking uses {!Objective.value}. SRA makes
    no submodularity assumption, so every backend (including OWA) may
    use it.

    [ctx.checkpoint] receives a {!Checkpoint.Round_improved} event on
    every improving round and a snapshot offer at every round boundary
    (best, current, stall counter, round number and live RNG words).
    [ctx.resume_from], when [Ok state] in phase {!Checkpoint.Sra_round},
    overrides the [start] argument entirely: best/current/stall/round
    are restored from the state, and — provided the caller also restores
    the context's rng from [state.rng] via {!Wgrap_util.Rng.of_words} —
    the refinement replays the uninterrupted run's remaining rounds
    exactly. A state in any other phase is ignored. [ctx.pool] is {e
    not} consulted: one refinement chain is inherently sequential; for
    the multi-chain parallel search use {!refine_parallel}. *)

val refine_parallel :
  ?params:params ->
  ?chains:int ->
  ?ctx:Ctx.t ->
  Instance.t ->
  Assignment.t ->
  Assignment.t
(** [chains] (default: the pool's job count) completely independent
    refinement chains run across [ctx.pool] (sequentially without one),
    each seeded from its own {!Wgrap_util.Rng.split} stream of the
    context rng and refining the same [start] with its own
    {!Gain_matrix.spawn} of the coordinator matrix — O(n_p) chain state
    sharing the static caches read-only, not a full-matrix copy — so
    chain memory no longer scales with [n_p * n_r]. The best final score
    wins,
    ties to the lowest chain index. The result is therefore a pure
    function of (rng state, [chains]) — the pool's job count changes
    only wall-clock time, which is what the parallel-equivalence
    property tests pin down.

    Workers poll [ctx.deadline] as usual; each returns its best-so-far
    on expiry, so the winner degrades exactly like sequential {!refine}.
    [ctx.checkpoint] is coordinator-only: no offers are made while
    chains run, and one saturated snapshot of the winner ([stall =
    omega]) is offered at the end — resuming it returns the winner
    immediately. A mid-run {!Checkpoint.Sra_round} resume cannot be
    replayed across an arbitrary chain schedule; callers holding one
    ({!Solver.cra} does) replay it with sequential {!refine} instead.
    [ctx.resume_from] is ignored here. *)

val column_denominators :
  n_reviewers:int -> score_matrix:float array array -> float array
(** The Eq. 9 denominators [sum_p' c(r, p')], COI cells excluded — the
    single source of truth (delegates to
    {!Gain_matrix.score_column_sums}), shared by {!refine},
    {!removal_probability} and the bid-aware refinement. *)

val keep_probability :
  n_reviewers:int ->
  denom:float array ->
  score_matrix:float array array ->
  round:int ->
  lambda:float ->
  paper:int ->
  reviewer:int ->
  float
(** Eq. 10 against a precomputed denominator array: the probability that
    pair (r, p) is {e correct} (high means keep). *)

val removal_probability :
  Instance.t ->
  score_matrix:float array array ->
  round:int ->
  lambda:float ->
  paper:int ->
  reviewer:int ->
  float
(** Eq. 10, exposed for unit tests: {!keep_probability} with the
    denominators recomputed on the fly — hot loops should precompute
    them once via {!column_denominators} instead. *)
