let solve inst =
  let n_p = Instance.n_papers inst and n_r = Instance.n_reviewers inst in
  let score = Instance.score_matrix inst in
  let groups =
    Lap.Mcmf.transportation
      ~row_supply:(Array.make n_p inst.Instance.delta_p)
      ~col_capacity:(Array.make n_r inst.Instance.delta_r)
      score
  in
  let assignment = Assignment.empty ~n_papers:n_p in
  Array.iteri
    (fun p reviewers ->
      List.iter (fun r -> Assignment.add assignment ~paper:p ~reviewer:r) reviewers)
    groups;
  assignment

let pair_objective inst assignment =
  let acc = ref 0. in
  Array.iteri
    (fun p group ->
      List.iter
        (fun r -> acc := !acc +. Instance.pair_score inst ~paper:p ~reviewer:r)
        group)
    assignment.Assignment.groups;
  !acc
