let combinations n k =
  let acc = ref 1. in
  for i = 0 to k - 1 do
    acc := !acc *. float_of_int (n - i) /. float_of_int (i + 1)
  done;
  !acc

(* All delta_p-subsets of the feasible reviewers of a paper, with their
   group scores, sorted best-first. *)
let groups_for inst p =
  let n_r = Instance.n_reviewers inst in
  let dp = inst.Instance.delta_p in
  let candidates =
    List.filter
      (fun r -> not (Instance.forbidden inst ~paper:p ~reviewer:r))
      (List.init n_r Fun.id)
    |> Array.of_list
  in
  let acc = ref [] in
  let chosen = Array.make dp 0 in
  let rec extend depth first =
    if depth = dp then begin
      let group = Array.to_list (Array.sub chosen 0 dp) in
      let score =
        Scoring.group_score inst.Instance.scoring
          (List.map (fun r -> inst.Instance.reviewers.(r)) group)
          inst.Instance.papers.(p)
      in
      acc := (score, group) :: !acc
    end
    else
      for i = first to Array.length candidates - 1 do
        chosen.(depth) <- candidates.(i);
        extend (depth + 1) (i + 1)
      done
  in
  extend 0 0;
  List.sort (fun (a, _) (b, _) -> compare b a) !acc |> Array.of_list

let solve ?(max_space = 1e8) ?deadline inst =
  let n_p = Instance.n_papers inst and n_r = Instance.n_reviewers inst in
  let dp = inst.Instance.delta_p and dr = inst.Instance.delta_r in
  let per_paper = combinations n_r dp in
  if per_paper ** float_of_int n_p > max_space then
    invalid_arg "Exact.solve: instance too large for exhaustive search";
  let best_value = ref neg_infinity in
  let best_choice = ref None in
  let timed_out = ref false in
  (try
     (* Enumeration itself can dominate on wide instances, so it polls
        the deadline too. *)
     let groups =
       Array.init n_p (fun p ->
           Wgrap_util.Timer.check_opt deadline;
           groups_for inst p)
     in
     (* best_tail.(p) = sum over papers >= p of their best unconstrained
        group score: an admissible bound on any completion. *)
     let best_tail = Array.make (n_p + 1) 0. in
     for p = n_p - 1 downto 0 do
       let best = if Array.length groups.(p) = 0 then 0. else fst groups.(p).(0) in
       best_tail.(p) <- best_tail.(p + 1) +. best
     done;
     let workload = Array.make n_r 0 in
     let chosen = Array.make n_p [] in
     let rec assign p value =
       Wgrap_util.Timer.check_opt deadline;
       if p = n_p then begin
         if value > !best_value then begin
           best_value := value;
           best_choice := Some (Array.copy chosen)
         end
       end
       else if value +. best_tail.(p) > !best_value then
         Array.iter
           (fun (score, group) ->
             (* Groups are sorted, so once even this group cannot beat the
                incumbent no later group can either — but the workload
                constraint is group-dependent, so we only skip, not cut. *)
             if List.for_all (fun r -> workload.(r) < dr) group then begin
               List.iter (fun r -> workload.(r) <- workload.(r) + 1) group;
               chosen.(p) <- group;
               assign (p + 1) (value +. score);
               List.iter (fun r -> workload.(r) <- workload.(r) - 1) group
             end)
           groups.(p)
     in
     (* The first leaf is a plain greedy dive, reached almost immediately
        after enumeration; on expiry the best complete assignment stands. *)
     assign 0 0.
   with Wgrap_util.Timer.Expired -> timed_out := true);
  match !best_choice with
  | Some choice -> { Assignment.groups = choice }
  | None when !timed_out ->
      (* Deadline fired before the first leaf: degrade to the greedy
         heuristic rather than raise — the anytime contract. *)
      Greedy.solve inst
  | None -> failwith "Exact.solve: no feasible assignment"
