(* A topic taxonomy: a forest over the instance's topic indices, used by
   the hierarchical-similarity objective (Objective.Taxonomy). Nodes are
   the topic ids themselves, so a taxonomy binds to any instance whose
   dimension matches its size. *)

type t = {
  parent : int array;  (* parent.(t) = parent topic, -1 for roots *)
  depth : int array;  (* hops to the root, 0 for roots *)
  by_depth : int array;  (* node ids ordered by increasing depth *)
}

let dim t = Array.length t.parent

(* Depths double as the cycle check: a chain longer than [n] must
   revisit a node. *)
let build parent =
  let n = Array.length parent in
  let depth = Array.make n (-1) in
  let rec depth_of steps v =
    if steps > n then Error (Printf.sprintf "cycle through topic %d" v)
    else if parent.(v) < 0 then Ok 0
    else if depth.(parent.(v)) >= 0 then Ok (depth.(parent.(v)) + 1)
    else
      Result.map (fun d -> d + 1) (depth_of (steps + 1) parent.(v))
  in
  let err = ref None in
  for v = 0 to n - 1 do
    if !err = None then
      match depth_of 0 v with
      | Ok d -> depth.(v) <- d
      | Error e -> err := Some e
  done;
  match !err with
  | Some e -> Error e
  | None ->
      let by_depth = Array.init n Fun.id in
      Array.sort
        (fun a b ->
          match Int.compare depth.(a) depth.(b) with
          | 0 -> Int.compare a b
          | c -> c)
        by_depth;
      Ok { parent; depth; by_depth }

let create parent =
  let n = Array.length parent in
  if n = 0 then Error "empty taxonomy"
  else begin
    let bad = ref None in
    Array.iteri
      (fun v p ->
        if p >= n then
          bad := Some (Printf.sprintf "topic %d: parent %d out of range" v p)
        else if p = v then
          bad := Some (Printf.sprintf "topic %d is its own parent" v))
      parent;
    match !bad with
    | Some e -> Error e
    | None -> build (Array.copy parent)
  end

let create_exn parent =
  match create parent with
  | Ok t -> t
  | Error e -> invalid_arg ("Taxonomy.create: " ^ e)

(* A balanced [arity]-ary forest with one root: node 0 is the root and
   node v hangs under (v - 1) / arity — the synthetic default when no
   curated tree is available (CLI/bench taxonomy legs on presets). *)
let balanced ~dim ~arity =
  if dim < 1 then invalid_arg "Taxonomy.balanced: dim must be >= 1";
  if arity < 1 then invalid_arg "Taxonomy.balanced: arity must be >= 1";
  create_exn (Array.init dim (fun v -> if v = 0 then -1 else (v - 1) / arity))

let parent t v = t.parent.(v)
let depth t v = t.depth.(v)

(* Tree distance in hops through the lowest common ancestor — the
   deeper endpoint climbs until the walks meet. Nodes in different
   trees of the forest are infinitely far apart ([None]). *)
let distance t a b =
  let da = ref a and db = ref b and hops_a = ref 0 and hops_b = ref 0 in
  while !da <> !db && (t.depth.(!da) > 0 || t.depth.(!db) > 0) do
    if t.depth.(!da) >= t.depth.(!db) then begin
      da := t.parent.(!da);
      incr hops_a
    end
    else begin
      db := t.parent.(!db);
      incr hops_b
    end
  done;
  if !da = !db then Some (!hops_a + !hops_b) else None

let similarity t ~decay a b =
  match distance t a b with
  | None -> 0.
  | Some d -> decay ** float_of_int d

(* Tree-smoothed expertise: smoothed.(u) = max_v vec.(v) * decay^d(u,v).
   Two passes over the depth order make this O(n): an upward sweep
   (deepest first) folds each node's best descendant value into its
   parent, and a downward sweep (shallowest first) folds each parent's
   best into its children. Any u-v tree path decomposes into an upward
   leg to the LCA and a downward leg from it, so the composition of the
   two sweeps realizes exactly decay^d(u,v) — see test_objective.ml for
   the brute-force oracle. *)
let smooth t ~decay vec =
  let n = dim t in
  if Array.length vec <> n then
    invalid_arg "Taxonomy.smooth: dimension mismatch";
  if decay < 0. || decay > 1. then
    invalid_arg "Taxonomy.smooth: decay must lie in [0, 1]";
  let best = Array.copy vec in
  (* Upward: deepest nodes first, so a node's slot already holds the
     max over its whole subtree when it is folded into its parent. *)
  for i = n - 1 downto 0 do
    let v = t.by_depth.(i) in
    let p = t.parent.(v) in
    if p >= 0 && best.(v) *. decay > best.(p) then best.(p) <- best.(v) *. decay
  done;
  (* Downward: shallowest first, so each node sees its parent's final
     value (which already includes every other branch). *)
  Array.iter
    (fun v ->
      let p = t.parent.(v) in
      if p >= 0 && best.(p) *. decay > best.(v) then best.(v) <- best.(p) *. decay)
    t.by_depth;
  best

(* {1 TSV codec}

   One edge per line, [child \t parent], parent [-1] (or [-]) for a
   root. Topics never mentioned default to roots, so a partial file
   over a large dimension is legal. *)

let of_lines ~dim lines =
  if dim < 1 then Error "taxonomy dimension must be >= 1"
  else begin
    let parent = Array.make dim (-1) in
    let err = ref None in
    List.iteri
      (fun lineno line ->
        if !err = None then
          let line = String.trim line in
          if line <> "" && line.[0] <> '#' then
            match String.split_on_char '\t' line with
            | [ child; par ] -> (
                let par = String.trim par in
                match
                  ( int_of_string_opt (String.trim child),
                    if par = "-" then Some (-1) else int_of_string_opt par )
                with
                | Some c, Some p when c >= 0 && c < dim && p >= -1 && p < dim ->
                    parent.(c) <- p
                | Some _, Some _ ->
                    err :=
                      Some
                        (Printf.sprintf
                           "line %d: topic id out of range in %S (taxonomy \
                            dimension is %d)"
                           (lineno + 1) line dim)
                | _ ->
                    err :=
                      Some
                        (Printf.sprintf "line %d: malformed edge %S"
                           (lineno + 1) line))
            | _ ->
                err :=
                  Some
                    (Printf.sprintf "line %d: expected child\\tparent, got %S"
                       (lineno + 1) line))
      lines;
    match !err with Some e -> Error e | None -> create parent
  end

let to_lines t =
  List.filter_map
    (fun v ->
      if t.parent.(v) < 0 then None
      else Some (Printf.sprintf "%d\t%d" v t.parent.(v)))
    (List.init (dim t) Fun.id)
