(** Minimal repairs to a running assignment when the world changes after
    the fact — a reviewer withdraws, or a conflict of interest surfaces
    late. Only the affected papers are touched; everyone else's
    assignment is left exactly as announced, which is what a program
    chair actually wants (re-running SDGA from scratch would reshuffle
    hundreds of groups for a one-reviewer change). *)

type change = {
  assignment : Assignment.t;  (** repaired, feasible *)
  touched_papers : int list;  (** papers whose group changed, ascending *)
}

val withdraw_reviewer :
  ?gains:Gain_matrix.t ->
  Instance.t ->
  Assignment.t ->
  reviewer:int ->
  (change, string) result
(** Remove every pair of [reviewer] and refill the affected papers with
    one Stage-WGRAP assignment over the remaining spare workloads
    (excluding the withdrawn reviewer entirely). Errors if the input is
    infeasible, the reviewer index is out of range, or no feasible
    refill exists (capacity genuinely exhausted).

    [gains], when given, must be shaped for [inst] (same paper/reviewer
    counts); it is rebound onto the instance, its group state synced to
    the post-removal groups of the affected papers, and maintained
    through the refill — so a resident caller ([wgrap serve]) amortizes
    gain rows across consecutive events instead of recomputing them per
    event. *)

val add_coi :
  ?gains:Gain_matrix.t ->
  Instance.t ->
  Assignment.t ->
  (int * int) list ->
  (Instance.t * change, string) result
(** Register late conflicts ([(paper, reviewer)] pairs), drop any
    assigned pair they invalidate, and refill the affected papers under
    the {e new} instance. Returns the updated instance alongside the
    repair. Pairs not currently assigned just become constraints.
    [gains] as in {!withdraw_reviewer}; it is rebound onto the {e new}
    instance (same shape, so warm rows survive — gain rows never read
    the COI mask). *)
