(** Best Reviewer Group Greedy (discussed at the start of Section 4.2 and
    evaluated as BRGG in Section 5.2): at each of P iterations, find the
    (group, paper) pair with the best coverage among unassigned papers —
    each inner search is a JRA instance solved exactly by BBA over the
    reviewers with remaining workload — and commit it.

    Early papers get near-ideal groups; tail papers are starved, which is
    the behaviour Figures 10-11 show. Per-paper best groups are cached
    and recomputed only when a member's workload is exhausted (sound
    because availability only shrinks, so an intact cached group stays
    optimal). *)

val solve : ?ctx:Ctx.t -> Instance.t -> Assignment.t
(** Only [ctx.deadline] is consulted (the greedy commit order is
    inherently sequential, and the per-paper BBA searches keep their own
    state). When it expires, papers not yet served keep empty groups and
    the closing {!Repair} pass completes them with best-pair fills; the
    per-paper BBA searches also honour the deadline, so a fired deadline
    degrades their groups to greedy picks rather than blocking. *)
