module Rng = Wgrap_util.Rng
module Timer = Wgrap_util.Timer

type params = {
  omega : int;
  lambda : float;
  max_rounds : int;
}

let default_params = { omega = 10; lambda = 0.05; max_rounds = 10_000 }

let removal_probability inst ~score_matrix ~round ~lambda ~paper ~reviewer =
  let n_r = float_of_int (Instance.n_reviewers inst) in
  let denom = ref 0. in
  Array.iter
    (fun row ->
      let s = row.(reviewer) in
      if s <> Lap.Hungarian.forbidden then denom := !denom +. s)
    score_matrix;
  let s = score_matrix.(paper).(reviewer) in
  let ratio = if !denom > 0. && s <> Lap.Hungarian.forbidden then s /. !denom else 0. in
  Float.max (1. /. n_r) (exp (-.lambda *. float_of_int round) *. ratio)

let refine ?(params = default_params) ?deadline ?on_round ~rng inst start =
  let n_p = Instance.n_papers inst and n_r = Instance.n_reviewers inst in
  let score_matrix = Instance.score_matrix inst in
  (* Per-reviewer coverage mass over all papers: the Eq. 9 denominator. *)
  let denom = Array.make n_r 0. in
  Array.iter
    (fun row ->
      for r = 0 to n_r - 1 do
        if row.(r) <> Lap.Hungarian.forbidden then denom.(r) <- denom.(r) +. row.(r)
      done)
    score_matrix;
  let keep_probability ~round ~paper ~reviewer =
    let s = score_matrix.(paper).(reviewer) in
    let ratio =
      if denom.(reviewer) > 0. && s <> Lap.Hungarian.forbidden then
        s /. denom.(reviewer)
      else 0.
    in
    Float.max
      (1. /. float_of_int n_r)
      (exp (-.params.lambda *. float_of_int round) *. ratio)
  in
  let best = ref (Assignment.copy start) in
  let best_score = ref (Assignment.coverage inst start) in
  let current = ref (Assignment.copy start) in
  let stall = ref 0 and round = ref 0 in
  let start_time = Timer.now () in
  (try
     while
       !stall < params.omega
       && !round < params.max_rounds
       && match deadline with Some d -> not (Timer.expired d) | None -> true
     do
       incr round;
       (* Removal phase: drop exactly one reviewer from every group,
          favouring pairs with low keep-probability. *)
       let trimmed = Assignment.empty ~n_papers:n_p in
       let workload = Array.make n_r 0 in
       for p = 0 to n_p - 1 do
         let members = Array.of_list (Assignment.group !current p) in
         let weights =
           Array.map
             (fun r -> 1. -. keep_probability ~round:!round ~paper:p ~reviewer:r)
             members
         in
         let victim =
           if Array.fold_left ( +. ) 0. weights <= 0. then
             Rng.int rng (Array.length members)
           else Rng.categorical rng weights
         in
         Array.iteri
           (fun i r ->
             if i <> victim then begin
               Assignment.add trimmed ~paper:p ~reviewer:r;
               workload.(r) <- workload.(r) + 1
             end)
           members
       done;
       (* Refill phase: one Stage-WGRAP completes every group. *)
       let capacity =
         Array.init n_r (fun r -> inst.Instance.delta_r - workload.(r))
       in
       let pairs = Stage.solve ?deadline inst ~current:trimmed ~capacity in
       List.iter (fun (p, r) -> Assignment.add trimmed ~paper:p ~reviewer:r) pairs;
       current := trimmed;
       let score = Assignment.coverage inst trimmed in
       if score > !best_score +. 1e-12 then begin
         best_score := score;
         best := Assignment.copy trimmed;
         stall := 0
       end
       else incr stall;
       match on_round with
       | Some f ->
           f ~round:!round
             ~elapsed:(Timer.now () -. start_time)
             ~best:!best_score
       | None -> ()
     done
   with
  | Failure _ ->
      (* An infeasible refill round (possible under adversarial COIs)
         simply ends refinement; the best-so-far stands. *)
      ()
  | Timer.Expired ->
      (* The deadline fired inside a refill stage; the trimmed round is
         abandoned and the best-so-far stands. *)
      ());
  !best
