module Rng = Wgrap_util.Rng
module Timer = Wgrap_util.Timer

type params = {
  omega : int;
  lambda : float;
  max_rounds : int;
}

let default_params = { omega = 10; lambda = 0.05; max_rounds = 10_000 }

(* Eq. 9 denominators — one source of truth, shared with the cached
   column sums of {!Gain_matrix}. *)
let column_denominators ~n_reviewers ~score_matrix =
  Gain_matrix.score_column_sums ~n_reviewers score_matrix

(* Eq. 10 with a precomputed denominator: the probability that pair
   (r, p) is correct (high means keep). *)
let keep_probability ~n_reviewers ~denom ~score_matrix ~round ~lambda ~paper
    ~reviewer =
  let s = score_matrix.(paper).(reviewer) in
  let ratio =
    if denom.(reviewer) > 0. && s <> Lap.Hungarian.forbidden then
      s /. denom.(reviewer)
    else 0.
  in
  Float.max
    (1. /. float_of_int n_reviewers)
    (exp (-.lambda *. float_of_int round) *. ratio)

let removal_probability inst ~score_matrix ~round ~lambda ~paper ~reviewer =
  let n_reviewers = Instance.n_reviewers inst in
  let denom = column_denominators ~n_reviewers ~score_matrix in
  keep_probability ~n_reviewers ~denom ~score_matrix ~round ~lambda ~paper
    ~reviewer

let refine_impl ?(params = default_params) ?deadline ?on_round ?gains
    ?(candidates = 0) ?checkpoint ?resume_from
    ?(objective = Objective.coverage) ~rng inst start =
  (* Bind once; the view is what rows, stages and scores are taken
     against (for a transforming backend a supplied [gains] must already
     be over it — the Ctx entry points uphold this). *)
  let obj = Objective.bind objective inst in
  let inst = Objective.view obj in
  let n_p = Instance.n_papers inst and n_r = Instance.n_reviewers inst in
  (* The shared gain matrix carries the Eq. 9 column sums (static across
     rounds), and its per-paper rows survive between rounds: a removal
     that never defined the group max on the paper's support keeps the
     row valid for the refill stage. *)
  let gm =
    match gains with Some g -> g | None -> Gain_matrix.create ~candidates inst
  in
  (* One keep closure for both backings. Keep-probabilities are only
     ever read for current group members — delta_p pairs per paper per
     round — so each score is recomputed on demand with the same sparse
     kernel (and the same COI sentinel) the dense cache was built from:
     bit-identical keep values, no O(n_p * n_r) read path. The removal
     model deliberately uses the pure coverage component
     ({!Objective.coverage_score}): removal targets topical misfit,
     modular terms (bids) steer the refill stage instead. The Eq. 9
     denominators come from the matrix's cached (dense) or streamed
     (pruned) column sums. *)
  let keep =
    let denom = Gain_matrix.column_denominators gm in
    fun ~round ~paper ~reviewer ->
      let s =
        if Instance.forbidden inst ~paper ~reviewer then
          Lap.Hungarian.forbidden
        else Objective.coverage_score obj ~paper ~reviewer
      in
      let ratio =
        if denom.(reviewer) > 0. && s <> Lap.Hungarian.forbidden then
          s /. denom.(reviewer)
        else 0.
      in
      Float.max
        (1. /. float_of_int n_r)
        (exp (-.params.lambda *. float_of_int round) *. ratio)
  in
  (* Resume only from a state captured in this phase. The snapshot's
     score is trusted over a recomputation so the improvement threshold
     below compares against exactly the float the uninterrupted run
     held (the codec round-trips floats bit-exactly); certification of
     that score against a recomputed objective is the store's job. *)
  let resume =
    match resume_from with
    | Some ({ Checkpoint.phase = Checkpoint.Sra_round k; _ } as st) ->
        Some (k, st)
    | _ -> None
  in
  let best =
    ref
      (match resume with
      | Some (_, st) -> Assignment.copy st.Checkpoint.best
      | None -> Assignment.copy start)
  in
  let best_score =
    ref
      (match resume with
      | Some (_, st) -> st.Checkpoint.score
      | None -> Objective.value obj start)
  in
  (* Plateau tie-breaking (OWA family only): [tie_break = None] keeps
     acceptance strictly value-improving, the coverage parity
     contract. The surrogate of the resumed best is recomputed — it is
     a pure function of the assignment, so no codec change. *)
  let tie_break = Objective.round_tie_break obj in
  let best_tb =
    ref (match tie_break with Some f -> f !best | None -> 0.)
  in
  let current =
    ref
      (match resume with
      | Some (_, st) -> Assignment.copy st.Checkpoint.current
      | None -> Assignment.copy start)
  in
  let stall = ref (match resume with Some (_, st) -> st.Checkpoint.stall | None -> 0)
  and round = ref (match resume with Some (k, _) -> k | None -> 0) in
  let start_time = Timer.now () in
  (try
     while
       !stall < params.omega
       && !round < params.max_rounds
       && match deadline with Some d -> not (Timer.expired d) | None -> true
     do
       incr round;
       (* Removal phase: drop exactly one reviewer from every group,
          favouring pairs with low keep-probability. *)
       let trimmed = Assignment.empty ~n_papers:n_p in
       let workload = Array.make n_r 0 in
       for p = 0 to n_p - 1 do
         let members = Array.of_list (Assignment.group !current p) in
         let weights =
           Array.map
             (fun r -> 1. -. keep ~round:!round ~paper:p ~reviewer:r)
             members
         in
         let victim =
           if Array.fold_left ( +. ) 0. weights <= 0. then
             Rng.int rng (Array.length members)
           else Rng.categorical rng weights
         in
         Array.iteri
           (fun i r ->
             if i <> victim then begin
               Assignment.add trimmed ~paper:p ~reviewer:r;
               workload.(r) <- workload.(r) + 1
             end)
           members;
         Gain_matrix.set_group gm ~paper:p (Assignment.group trimmed p)
       done;
       (* Refill phase: one Stage-WGRAP completes every group. *)
       let capacity =
         Array.init n_r (fun r -> inst.Instance.delta_r - workload.(r))
       in
       let pair_gain = Objective.stage_gain obj ~current:trimmed in
       let pairs =
         Stage.solve ?gains:(Some gm) ?pair_gain ?deadline inst
           ~current:trimmed ~capacity
       in
       List.iter
         (fun (p, r) ->
           Assignment.add trimmed ~paper:p ~reviewer:r;
           Gain_matrix.add gm ~paper:p ~reviewer:r)
         pairs;
       current := trimmed;
       let score = Objective.value obj trimmed in
       let improved = score > !best_score +. 1e-12 in
       let tb_candidate =
         match tie_break with Some f -> Some (f trimmed) | None -> None
       in
       let plateau =
         (not improved)
         && score >= !best_score -. 1e-12
         && (match tb_candidate with
            | Some c -> c > !best_tb +. 1e-12
            | None -> false)
       in
       if improved || plateau then begin
         if improved then best_score := score;
         (match tb_candidate with Some c -> best_tb := c | None -> ());
         best := Assignment.copy trimmed;
         stall := 0
       end
       else incr stall;
       (match checkpoint with
       | None -> ()
       | Some sink ->
           if improved then
             sink.Checkpoint.on_event
               (Checkpoint.Round_improved { round = !round; score });
           (* The RNG words are read inside the thunk, i.e. at the exact
              round boundary a resumed run re-enters — the sink forces
              the thunk synchronously or not at all. *)
           sink.Checkpoint.offer (fun () ->
               {
                 Checkpoint.link = "sra";
                 phase = Checkpoint.Sra_round !round;
                 stall = !stall;
                 score = !best_score;
                 rng = Some (Rng.words rng);
                 best = Assignment.copy !best;
                 current = Assignment.copy !current;
               }));
       match on_round with
       | Some f ->
           f ~round:!round
             ~elapsed:(Timer.now () -. start_time)
             ~best:!best_score
       | None -> ()
     done
   with
  | Failure _ ->
      (* An infeasible refill round (possible under adversarial COIs)
         simply ends refinement; the best-so-far stands. *)
      ()
  | Timer.Expired ->
      (* The deadline fired inside a refill stage; the trimmed round is
         abandoned and the best-so-far stands. *)
      ());
  !best

let refine ?params ?on_round ?(ctx = Ctx.default) inst start =
  let resume_from =
    match ctx.Ctx.resume_from with Some (Ok s) -> Some s | _ -> None
  in
  refine_impl ?params ?deadline:ctx.Ctx.deadline ?on_round ?gains:ctx.Ctx.gains
    ~candidates:ctx.Ctx.candidates ?checkpoint:ctx.Ctx.checkpoint ?resume_from
    ~objective:ctx.Ctx.objective ~rng:(Ctx.rng_or ~seed:0 ctx) inst start

(* Parallel SRA: [chains] completely independent refinement chains, one
   per task, each with its own split RNG stream and private gain matrix
   ({!Gain_matrix.spawn}: static caches and candidate lists shared
   read-only, rows lazy and worker-private). The winner
   is the highest-scoring chain, ties to the lowest chain index, so the
   result is a pure function of (rng state, chains) — the pool's job
   count only changes wall-clock time. *)
let refine_parallel ?params ?chains ?(ctx = Ctx.default) inst start =
  let module Pool = Wgrap_par.Pool in
  let pool =
    match ctx.Ctx.pool with Some p -> p | None -> Pool.sequential
  in
  let chains =
    match chains with Some c -> max 1 c | None -> max 1 (Pool.jobs pool)
  in
  let deadline = ctx.Ctx.deadline in
  let rng = Ctx.rng_or ~seed:0 ctx in
  let chain_rngs = Rng.split rng chains in
  (* The coordinator binds once for matrix construction and winner
     scoring; each chain re-binds the same spec inside refine_impl
     (deterministic, so the views agree value-for-value with the
     coordinator's matrix caches). *)
  let obj = Objective.bind ctx.Ctx.objective inst in
  (* Coordinator-owned matrix: prime the score matrix and Eq. 9 sums
     once (row-parallel), then hand the immutable caches to every
     chain's private matrix. If the deadline cuts the priming short the
     chains fall back to computing the caches lazily — they will find
     the deadline expired and return the start assignment anyway. *)
  let base_gm =
    match ctx.Ctx.gains with
    | Some g -> g
    | None ->
        Gain_matrix.create ~candidates:ctx.Ctx.candidates (Objective.view obj)
  in
  (try Objective.prime ~pool ?deadline obj base_gm with Timer.Expired -> ());
  let results =
    Pool.run pool ~n:chains (fun c ->
        (* A spawn, not a full-matrix copy: O(n_p) chain state sharing
           the coordinator's static caches and candidate lists
           read-only; rows materialize lazily inside the worker's own
           Bigarray buffers. *)
        let gm = Gain_matrix.spawn base_gm in
        (* No [checkpoint] and no [on_round] inside a worker: observers
           run on the coordinator only (the sink contract is
           single-domain). Workers poll the shared deadline through the
           round loop as usual. *)
        let a =
          refine_impl ?params ?deadline ~gains:gm
            ~objective:ctx.Ctx.objective ~rng:chain_rngs.(c) inst start
        in
        (Objective.value obj a, a))
  in
  let best_c = ref 0 in
  for c = 1 to chains - 1 do
    if fst results.(c) > fst results.(!best_c) then best_c := c
  done;
  let best_score, best = results.(!best_c) in
  (* One coordinator-side snapshot of the winner, saturated ([stall =
     omega]) so that resuming it returns the winner immediately instead
     of replaying rounds that never happened in this schedule. *)
  (match ctx.Ctx.checkpoint with
  | None -> ()
  | Some sink ->
      let omega =
        (match params with Some p -> p | None -> default_params).omega
      in
      sink.Checkpoint.offer (fun () ->
          let snap = Assignment.copy best in
          {
            Checkpoint.link = "sra";
            phase = Checkpoint.Sra_round 0;
            stall = omega;
            score = best_score;
            rng = Some (Rng.words rng);
            best = snap;
            current = snap;
          }));
  best
