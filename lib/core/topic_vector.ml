module Stats = Wgrap_util.Stats

type t = float array

let dim = Array.length

let validate v =
  if Array.length v = 0 then Error "topic vector has no dimensions"
  else if Array.exists (fun x -> x < 0. || Float.is_nan x) v then
    Error "topic vector has a negative or NaN coordinate"
  else Ok ()

let normalize = Stats.normalize
let mass = Stats.sum

let extend_max g r =
  if Array.length g <> Array.length r then
    invalid_arg "Topic_vector.extend_max: dimension mismatch";
  Array.mapi (fun t x -> Float.max x r.(t)) g

let extend_max_into ~dst r =
  if Array.length dst <> Array.length r then
    invalid_arg "Topic_vector.extend_max_into: dimension mismatch";
  Array.iteri (fun t x -> if x > dst.(t) then dst.(t) <- x) r

let group_max = function
  | [] -> invalid_arg "Topic_vector.group_max: empty group"
  | first :: rest ->
      let acc = Array.copy first in
      List.iter (fun r -> extend_max_into ~dst:acc r) rest;
      acc

type support = { vec : t; idx : int array; nz : float array; mass : float }

let support v =
  let n = Array.length v in
  let count = ref 0 in
  for t = 0 to n - 1 do
    if v.(t) > 0. then incr count
  done;
  let idx = Array.make !count 0 and nz = Array.make !count 0. in
  let k = ref 0 in
  (* [mass] sums every coordinate left to right — the exact accumulation
     order of the dense scoring denominator, so sparse and dense scores
     divide by bit-identical masses. *)
  let mass = ref 0. in
  for t = 0 to n - 1 do
    mass := !mass +. v.(t);
    if v.(t) > 0. then begin
      idx.(!k) <- t;
      nz.(!k) <- v.(t);
      incr k
    end
  done;
  { vec = v; idx; nz; mass = !mass }

let top_topics v k =
  let indices = Array.init (Array.length v) (fun i -> i) in
  (* Stable sort keeps lower indices first among ties. *)
  let sorted = Array.copy indices in
  Array.stable_sort (fun a b -> compare v.(b) v.(a)) sorted;
  Array.to_list (Array.sub sorted 0 (min k (Array.length v)))

let pp fmt v =
  Format.fprintf fmt "[%s]"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3f") v)))
