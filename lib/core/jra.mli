(** The Journal Reviewer Assignment problem (Definition 6): pick the
    group of [group_size] reviewers from a pool that maximizes the
    coverage of a single paper. Shared types for the four exact solvers
    (BFS, BBA, ILP, CP). *)

type problem = {
  paper : Topic_vector.t;
  pool : Topic_vector.t array;  (** candidate reviewers *)
  group_size : int;  (** delta_p *)
  scoring : Scoring.kind;
  excluded : bool array option;
      (** reviewers that may not be chosen (conflicts of interest, or
          exhausted workloads when called from CRA solvers) *)
}

type solution = {
  group : int list;  (** reviewer indices, ascending *)
  score : float;
}

val make :
  ?scoring:Scoring.kind ->
  ?excluded:bool array ->
  paper:Topic_vector.t ->
  pool:Topic_vector.t array ->
  group_size:int ->
  unit ->
  problem
(** Validates shapes; raises [Invalid_argument] if the pool (net of
    exclusions) is smaller than [group_size]. *)

val of_instance : ?candidates:int -> Instance.t -> paper:int -> problem
(** JRA sub-problem for one paper of a WGRAP instance (COIs become
    exclusions). [candidates], when positive and below the pool size,
    additionally excludes every reviewer outside the paper's
    {!Instance.candidates} top-[k] list, so the exact solvers explore a
    pruned pool; if fewer than [group_size] candidates survive, the
    pruning is dropped (COI-only exclusions) rather than making the
    problem infeasible. [0] (the default) keeps the dense pool. *)

val available : problem -> int
(** Number of selectable reviewers. *)

val score_group : problem -> int list -> float
(** Coverage of an explicit group (no feasibility checks). *)

val greedy : problem -> solution
(** Single greedy pass: [group_size] picks by descending marginal gain,
    O(group_size * R * T). Not exact — this is the last link of the
    anytime fallback chain ({!Solver}) and the incumbent of last resort
    when an exact solver's deadline fires before its first leaf. *)
