(** Branch-and-Bound Algorithm for JRA (Section 3, Algorithm 1).

    The search space is the tree of reviewer combinations, explored in
    [delta_p] stages. At each stage, T cursors walk T sorted lists (one
    per topic, reviewers sorted by descending expertise on that topic):

    - {b Branching}: among the reviewers currently under a cursor, the
      one with the largest marginal gain (Definition 8) is expanded
      first.
    - {b Bounding}: the cursor heads upper-bound what any deeper
      extension can still achieve (Eq. 3); a stage whose bound cannot
      beat the best-so-far is abandoned, and because cursor values only
      decrease within a stage, the whole stage is pruned at once.
    - {b Feasibility} (Definition 7): reviewers fully explored at an
      earlier point of the current path are skipped, so every
      combination is examined at most once.

    Exact for every scoring kind (the bound only needs per-topic
    monotonicity, which Lemma 4's conditions give). *)

type stats = {
  nodes : int;  (** reviewers expanded (branch steps) *)
  pruned : int;  (** stages abandoned by the bound *)
}

val solve :
  ?use_bound:bool -> ?deadline:Wgrap_util.Timer.deadline -> Jra.problem ->
  Jra.solution
(** Exact optimum. [use_bound:false] keeps the branching order but
    disables Eq. 3 pruning (ablation). When [deadline] expires mid
    search, the best group found so far is returned instead (anytime
    behaviour); a greedy pick stands in if not even one leaf was
    reached. Never raises on expiry. *)

val solve_counting :
  ?use_bound:bool -> ?deadline:Wgrap_util.Timer.deadline -> Jra.problem ->
  Jra.solution * stats
(** {!solve}, returning the search counters instead of recording them in
    the {!last_stats} cell. This is the variant safe to call from worker
    domains: it touches no shared state, the caller owns the counters.
    Anything running under a {!Wgrap_par.Pool} task (e.g. the Solver
    batch chain) must use it instead of {!solve}/{!top_k}. *)

val top_k :
  ?use_bound:bool -> ?deadline:Wgrap_util.Timer.deadline -> Jra.problem ->
  k:int -> Jra.solution list
(** The [k] best groups, best first. With the bound enabled, groups
    tying exactly with the k-th score may be replaced by equal-scoring
    ones. On [deadline] expiry, the (possibly fewer than [k]) incumbents
    found so far are returned. *)

val solve_many :
  ?use_bound:bool ->
  ?deadline:Wgrap_util.Timer.deadline ->
  ?pool:Wgrap_par.Pool.t ->
  Jra.problem array ->
  Jra.solution array
(** [solve] over a batch of independent problems, in input order. With
    [pool], problems are solved across domains — each search's state is
    call-local (see {!stats} aggregation below), the deadline is shared
    read-only, and results are slot-per-problem, so the output is
    bit-identical at any job count. A [deadline] applies to the batch as
    a whole: late problems inherit whatever remains, exactly as a
    sequential loop over {!solve} would behave. After the call,
    {!last_stats} reports totals summed over the batch. *)

val last_stats : unit -> stats
(** Counters from the most recent {!solve}/{!top_k} call, or batch
    totals after {!solve_many}. Written only from the calling domain
    (workers return their counters; the coordinator aggregates), but not
    synchronised beyond that — call it from the domain that solved. *)
