(** The first-class assignment objective.

    Solvers consult a bound objective ({!t}) for every score they need
    — pair scores, group scores, marginal gains, whole-assignment
    values — instead of reaching for {!Scoring} or
    {!Instance.pair_score} directly (the wgrap_lint [direct-scoring]
    rule enforces this in solver modules). A {!spec} names the backend
    and its parameters; {!bind} attaches it to a concrete instance,
    producing the {!view} the kernels and gain matrices actually score
    against.

    Backends:
    - [Coverage] — the paper's weighted-coverage objective (Eq. 9),
      the default and the bit-identical parity oracle.
    - [Blend] — coverage λ-blended with a modular reviewer-preference
      (bid) term; the generalization of the old [Bids] solver entry.
    - [Owa] — order-weighted average of the ascending-sorted per-paper
      coverages (Lian et al.); [weights = [|1.|]] is min-coverage /
      egalitarian. {b Not} submodular: Lemma 4's per-topic additivity
      fails, so {!Solver.cra} routes greedy-seeded SRA chains instead
      of SDGA-led ones.
    - [Taxonomy] — hierarchical keyword similarity (Kalmukov): reviewer
      expertise bleeds along a topic-tree with per-hop [decay]; realized
      as coverage over an instance view with tree-smoothed reviewer
      vectors ({!Taxonomy.smooth}), so every coverage kernel applies
      unchanged.

    Chain-routing contract: a solver ladder may lead with SDGA only if
    [submodular spec && monotone spec]; otherwise it must start from a
    greedy (exchange-safe) seed. See DESIGN.md "Objectives". *)

type pair_gain = paper:int -> reviewer:int -> coverage_gain:float -> float
(** A per-pair gain transform: maps a raw coverage marginal gain to the
    objective's stage gain for that (paper, reviewer) cell. The hook
    {!Stage} and the greedy heap apply without knowing the backend. *)

type spec =
  | Coverage
  | Blend of { preferences : float array array; lambda : float }
      (** [lambda * coverage + (1 - lambda) * bid / delta_p], with
          [preferences] a [P x R] non-negative bid matrix. *)
  | Owa of { weights : float array }
      (** Weights applied to the {e ascending}-sorted per-paper
          coverages; positions beyond the vector contribute 0. *)
  | Taxonomy of { tree : Taxonomy.t; decay : float }

(** {1 Constructors} *)

val coverage : spec

val blend : ?lambda:float -> float array array -> spec
(** Default [lambda = 0.7] (the paper's bid-blend default). Raises
    [Invalid_argument] unless [lambda] lies in [0, 1] and the matrix is
    non-empty; the shape is checked against the instance at {!bind}. *)

val owa : float array -> spec
(** Copies the vector. Raises [Invalid_argument] on an empty vector,
    a negative/non-finite weight, or an all-zero vector. *)

val min_coverage : spec
(** [Owa {weights = [|1.|]}]: maximize the worst-off paper. *)

val taxonomy : ?decay:float -> Taxonomy.t -> spec
(** Default [decay = 0.5]. Raises [Invalid_argument] unless [decay]
    lies in [0, 1]. *)

(** {1 Spec inspection} *)

val name : spec -> string
(** ["coverage"], ["blend"], ["owa"], ["min"] (unit-weight OWA), or
    ["taxonomy"] — the [--objective] vocabulary. *)

val describe : spec -> string
(** One deterministic line pinning the spec and its parameters — what
    shard manifests record so a resume fail-stops on a mismatch. *)

val is_min : spec -> bool

val submodular : spec -> bool
(** Whether the induced set function satisfies Lemma 4's conditions, so
    the SDGA stage-confinement guarantee applies. False for [Owa]. *)

val monotone : spec -> bool
(** Whether adding a reviewer can never lower the objective. True for
    all current backends. *)

val transforms : spec -> bool
(** Whether {!bind} rewrites the instance ([view t != inst]). When
    true, any externally supplied {!Gain_matrix} (e.g. [ctx.gains])
    must have been created over {!view}, not the raw instance — the
    solver entry points that bind for you ({!Solver.cra},
    {!Sdga.solve}, …) uphold this. True only for [Taxonomy]. *)

(** {1 Binding} *)

type t
(** A spec bound to an instance: the thing solvers score against. *)

val bind : spec -> Instance.t -> t
(** Validates spec-vs-instance shape ([Blend] matrix dimensions,
    [Taxonomy] tree dimension) and computes the scoring view. Raises
    [Invalid_argument] on mismatch. *)

val spec : t -> spec

val view : t -> Instance.t
(** The instance to build gain matrices, stages and JRA subproblems
    over. Physically the bound instance except for transforming
    backends. *)

(** {1 Scoring} *)

val pair_score : t -> paper:int -> reviewer:int -> float
(** The objective's single-reviewer score c(r, p) — includes the bid
    term for [Blend]. *)

val coverage_score : t -> paper:int -> reviewer:int -> float
(** The pure coverage component under the view — what SRA's Eq. 10
    keep-probabilities are built from (removal models topical misfit;
    modular terms steer the refill via {!stage_gain} instead). Equal to
    {!pair_score} for every backend except [Blend]. *)

val group_score : t -> paper:int -> int list -> float
(** c(g, p) of a reviewer group for one paper. *)

val marginal_gain :
  t -> group:Topic_vector.t -> paper:int -> reviewer:int -> float
(** Definition 8 marginal gain of adding [reviewer] to a group whose
    current coordinatewise-max vector is [group], plus any modular
    term. *)

val per_paper_scores : t -> Assignment.t -> float array

val owa_value : weights:float array -> float array -> float
(** The OWA aggregation itself (exposed for tests and {!Summary}):
    weights dotted with the ascending sort of the scores. *)

val value : t -> Assignment.t -> float
(** The objective value of a (possibly partial) assignment — what SRA
    acceptance, checkpoint records and {!Summary} report. *)

(** {1 Solver hooks} *)

val static_gain : t -> pair_gain option
(** A current-assignment-independent gain transform, if the backend has
    one ([Blend]'s bid term is modular). [None] means raw coverage
    gains are already correct ([Coverage], [Taxonomy]) or the transform
    is rank-dependent and must be recomputed per round ([Owa]). Safe to
    bake into a lazy greedy heap. *)

val stage_gain : t -> current:Assignment.t -> pair_gain option
(** The per-stage gain transform given the current partial assignment:
    [static_gain] when that exists; for [Owa], a rank-boost built from
    the current per-paper scores — the leximin geometric weight of the
    paper's ascending rank (see {!round_tie_break}) plus its
    normalized OWA weight — so every refill stage steers contested
    reviewers toward worse-covered papers, with extra pull on the
    ranks the OWA value reads. *)

val round_tie_break : t -> (Assignment.t -> float) option
(** A secondary score SRA may consult when {!value} plateaus within
    epsilon: accepting tie-rounds that raise it keeps refinement
    moving along the objective's level sets. [Some] only for the OWA
    family — a leximin surrogate (geometric rank weights, ratio
    pinned so the weight halves across a quarter of the papers, over
    the ascending-sorted per-paper coverages) that flattens the
    coverage tail while the worst papers are stuck. [None]
    ([Coverage], [Blend], [Taxonomy]) leaves acceptance strictly
    value-improving — the bit-parity contract of the default chain. *)

val prime :
  ?pool:Wgrap_par.Pool.t ->
  ?deadline:Wgrap_util.Timer.deadline ->
  t ->
  Gain_matrix.t ->
  unit
(** Cache-priming hook: force the objective's derived caches and the
    gain matrix's static state ahead of a solve (current backends keep
    no mutable caches beyond the matrix's own). The matrix must be over
    {!view}. *)

val jra_problem : ?candidates:int -> t -> paper:int -> Jra.problem
(** The single-paper best-group subproblem under this objective. *)
