type topic_set = int list

let encode ~n_topics set =
  let v = Array.make n_topics 0. in
  List.iter
    (fun t ->
      if t < 0 || t >= n_topics then invalid_arg "Sgrap.encode: topic out of range";
      v.(t) <- 1.)
    set;
  v

let decode v =
  let acc = ref [] in
  for t = Array.length v - 1 downto 0 do
    if v.(t) > 0. then acc := t :: !acc
  done;
  !acc

let set_coverage ~group ~paper =
  match paper with
  | [] -> 0.
  | _ ->
      let union = List.sort_uniq compare (List.concat group) in
      let paper = List.sort_uniq compare paper in
      let covered = List.filter (fun t -> List.mem t union) paper in
      float_of_int (List.length covered) /. float_of_int (List.length paper)

let instance ?coi ~n_topics ~papers ~reviewers ~delta_p ~delta_r () =
  let enc = Array.map (encode ~n_topics) in
  Instance.create ?coi ~scoring:Scoring.Weighted_coverage ~papers:(enc papers)
    ~reviewers:(enc reviewers) ~delta_p ~delta_r ()

let binarize ?threshold inst =
  let cut v =
    let threshold =
      match threshold with
      | Some t -> t
      | None ->
          (* Mean positive weight: keeps a vector's salient topics. *)
          let sum = ref 0. and count = ref 0 in
          Array.iter
            (fun x ->
              if x > 0. then begin
                sum := !sum +. x;
                incr count
              end)
            v;
          if !count = 0 then infinity else !sum /. float_of_int !count
    in
    Array.map (fun x -> if x >= threshold then 1. else 0.) v
  in
  let papers = Array.map cut inst.Instance.papers in
  let reviewers = Array.map cut inst.Instance.reviewers in
  (* A paper that loses every topic would have zero mass; keep its top
     topic so scores stay well-defined. *)
  Array.iteri
    (fun p v ->
      if Array.for_all (fun x -> Float.equal x 0.) v then begin
        let top = Wgrap_util.Stats.argmax inst.Instance.papers.(p) in
        v.(top) <- 1.
      end)
    papers;
  let coi =
    match inst.Instance.coi with
    | None -> []
    | Some m ->
        let acc = ref [] in
        Array.iteri
          (fun p row ->
            Array.iteri (fun r bad -> if bad then acc := (p, r) :: !acc) row)
          m;
        !acc
  in
  Instance.create_exn ~scoring:inst.Instance.scoring ~coi ~papers ~reviewers
    ~delta_p:inst.Instance.delta_p ~delta_r:inst.Instance.delta_r ()
