(* Shared incremental gain matrix: per-paper rows of marginal coverage
   gains, maintained alongside the evolving assignment. Rows live in
   lazily-allocated Bigarray (Float64, C-layout) buffers — off the OCaml
   heap, so pool domains read them without GC traffic — and are
   versioned per paper and recomputed with the sparse kernels; a group
   update that cannot change a row (it left the group vector untouched
   on the paper's support) does not invalidate it, so SDGA stages and
   SRA rounds recompute only the rows that actually moved.

   Two backings share the interface. Dense (k = 0): each row covers all
   n_r reviewers, bit-identical to the historical flat-array matrix.
   Candidate-pruned (k > 0): each row covers only the paper's top-k
   candidate reviewers from the instance's inverted topic index, so the
   whole matrix is O(n_p * k) instead of O(n_p * n_r) — the memory-wall
   fix. Nothing n_p * n_r-sized is ever allocated in pruned mode; the
   cached score matrix is refused and the Eq. 9 column sums stream. *)

type row = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mutable inst : Instance.t;  (* rebindable: serve swaps in new COI *)
  n_p : int;
  n_r : int;
  dim : int;
  k : int;  (* candidates per paper; 0 = dense *)
  cands : int array option array;  (* pruned: per-paper ids, ascending *)
  rows : row option array;  (* lazy gain rows; length n_r or |cands| *)
  gvec : Topic_vector.t option array;  (* lazy group vector per paper *)
  version : int array;  (* current group version per paper *)
  row_version : int array;  (* version the row reflects; -1 = never *)
  mutable scratch_row : float array;  (* n_r staging, dense mode only *)
  mutable scratch_vec : float array;  (* dim, staging for set_group *)
  mutable scores : float array array option;  (* cached score matrix *)
  mutable denom : float array option;  (* cached Eq. 9 column sums *)
}

let create ?(candidates = 0) inst =
  if candidates < 0 then
    invalid_arg "Gain_matrix.create: candidates must be >= 0";
  let n_p = Instance.n_papers inst and n_r = Instance.n_reviewers inst in
  let dim = Instance.n_topics inst in
  (* k >= n_r prunes nothing: normalize to the dense backing so the
     dense bit-identity guarantee holds by construction. *)
  let k = if candidates >= n_r then 0 else candidates in
  {
    inst;
    n_p;
    n_r;
    dim;
    k;
    cands = Array.make n_p None;
    rows = Array.make n_p None;
    gvec = Array.make n_p None;
    version = Array.make n_p 0;
    row_version = Array.make n_p (-1);
    scratch_row = [||];
    scratch_vec = [||];
    scores = None;
    denom = None;
  }

let pruned t = t.k > 0
let candidate_count t = t.k

(* Computed by scanning the row slots rather than kept as a shared
   counter: pool workers allocate rows concurrently during {!rebuild},
   and a lost increment would corrupt a counter where a scan cannot
   be wrong. O(n_p); telemetry, not a hot path. *)
let matrix_bytes t =
  let bytes = ref 0 in
  Array.iter
    (function
      | Some row -> bytes := !bytes + (8 * Bigarray.Array1.dim row)
      | None -> ())
    t.rows;
  !bytes

let group_vec t paper =
  match t.gvec.(paper) with
  | Some g -> g
  | None ->
      let g = Array.make t.dim 0. in
      t.gvec.(paper) <- Some g;
      g

let candidate_list t paper =
  match t.cands.(paper) with
  | Some c -> c
  | None ->
      let c = Instance.candidates t.inst ~k:t.k ~paper in
      t.cands.(paper) <- Some c;
      c

let candidates t ~paper =
  if t.k = 0 then invalid_arg "Gain_matrix.candidates: dense matrix";
  candidate_list t paper

let row_length t paper =
  if t.k = 0 then t.n_r else Array.length (candidate_list t paper)

let row_buffer t paper =
  match t.rows.(paper) with
  | Some row -> row
  | None ->
      let len = row_length t paper in
      let row = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len in
      t.rows.(paper) <- Some row;
      row

let reset t =
  for p = 0 to t.n_p - 1 do
    (match t.gvec.(p) with
    | Some g -> Array.fill g 0 t.dim 0.
    | None -> ());
    t.version.(p) <- t.version.(p) + 1
  done

(* Whether a change of the group vector at topic [tt] can move row [p].
   For the three kinds whose contribution vanishes off the paper's
   support, only supported topics matter; Reviewer_coverage gains read
   the group everywhere. *)
let relevant t ~paper tt =
  match t.inst.Instance.scoring with
  | Scoring.Reviewer_coverage -> true
  | _ -> t.inst.Instance.papers.(paper).(tt) > 0.

let add t ~paper ~reviewer =
  let rs = Instance.reviewer_support t.inst reviewer in
  let idx = rs.Topic_vector.idx and nz = rs.Topic_vector.nz in
  let g = group_vec t paper in
  let changed = ref false in
  for k = 0 to Array.length idx - 1 do
    let tt = idx.(k) in
    if nz.(k) > g.(tt) then begin
      g.(tt) <- nz.(k);
      if not !changed then changed := relevant t ~paper tt
    end
  done;
  if !changed then t.version.(paper) <- t.version.(paper) + 1

let set_group t ~paper members =
  if Array.length t.scratch_vec = 0 then t.scratch_vec <- Array.make t.dim 0.;
  let nv = t.scratch_vec in
  Array.fill nv 0 t.dim 0.;
  List.iter
    (fun r ->
      let rs = Instance.reviewer_support t.inst r in
      let idx = rs.Topic_vector.idx and nz = rs.Topic_vector.nz in
      for k = 0 to Array.length idx - 1 do
        if nz.(k) > nv.(idx.(k)) then nv.(idx.(k)) <- nz.(k)
      done)
    members;
  let g = group_vec t paper in
  let changed = ref false in
  (match t.inst.Instance.scoring with
  | Scoring.Reviewer_coverage ->
      for tt = 0 to t.dim - 1 do
        if nv.(tt) <> g.(tt) then changed := true
      done
  | _ ->
      let ps = Instance.paper_support t.inst paper in
      let idx = ps.Topic_vector.idx in
      for k = 0 to Array.length idx - 1 do
        let tt = idx.(k) in
        if nv.(tt) <> g.(tt) then changed := true
      done);
  Array.blit nv 0 g 0 t.dim;
  if !changed then t.version.(paper) <- t.version.(paper) + 1

let version t ~paper = t.version.(paper)
let group_vector t ~paper = group_vec t paper

let gain t ~paper ~reviewer =
  Scoring.gain_sparse t.inst.Instance.scoring ~group:(group_vec t paper)
    (Instance.reviewer_support t.inst reviewer)
    (Instance.paper_support t.inst paper)

(* Recompute a stale dense row [paper] through [scratch] (any n_r float
   buffer — the kernels write OCaml arrays). The shared [t.scratch_row]
   serves the sequential callers; {!rebuild}'s workers pass their own
   buffer so domains never share staging memory. *)
let ensure_row_with t ~scratch paper =
  if t.row_version.(paper) <> t.version.(paper) then begin
    Scoring.gain_into t.inst.Instance.scoring ~dst:scratch
      ~group:(group_vec t paper) ~reviewers:t.inst.Instance.rsupp
      (Instance.paper_support t.inst paper);
    let row = row_buffer t paper in
    for r = 0 to t.n_r - 1 do
      Bigarray.Array1.set row r scratch.(r)
    done;
    t.row_version.(paper) <- t.version.(paper)
  end

(* Pruned rows skip the staging entirely: one O(nnz) sparse gain per
   candidate, written straight into the Bigarray row. The arithmetic is
   the per-reviewer body of [Scoring.gain_into], so a candidate's cell
   is bit-identical to its dense counterpart. *)
let ensure_row_pruned t paper =
  if t.row_version.(paper) <> t.version.(paper) then begin
    let cands = candidate_list t paper in
    let row = row_buffer t paper in
    let group = group_vec t paper in
    let ps = Instance.paper_support t.inst paper in
    for i = 0 to Array.length cands - 1 do
      Bigarray.Array1.set row i
        (Scoring.gain_sparse t.inst.Instance.scoring ~group
           (Instance.reviewer_support t.inst cands.(i))
           ps)
    done;
    t.row_version.(paper) <- t.version.(paper)
  end

let ensure_row t paper =
  if t.k > 0 then ensure_row_pruned t paper
  else begin
    if Array.length t.scratch_row = 0 then t.scratch_row <- Array.make t.n_r 0.;
    ensure_row_with t ~scratch:t.scratch_row paper
  end

let blit_row t ~paper ~dst =
  if t.k > 0 then invalid_arg "Gain_matrix.blit_row: pruned matrix";
  if Array.length dst <> t.n_r then
    invalid_arg "Gain_matrix.blit_row: dst length mismatch";
  ensure_row t paper;
  let row = row_buffer t paper in
  for r = 0 to t.n_r - 1 do
    dst.(r) <- Bigarray.Array1.get row r
  done

let iter_row t ~paper f =
  ensure_row t paper;
  let row = row_buffer t paper in
  if t.k > 0 then begin
    let cands = candidate_list t paper in
    for i = 0 to Array.length cands - 1 do
      f ~reviewer:cands.(i) ~gain:(Bigarray.Array1.get row i)
    done
  end
  else
    for r = 0 to t.n_r - 1 do
      f ~reviewer:r ~gain:(Bigarray.Array1.get row r)
    done

let fold_row t ~paper ~init f =
  let acc = ref init in
  iter_row t ~paper (fun ~reviewer ~gain -> acc := f !acc ~reviewer ~gain);
  !acc

(* Dense-only internal: the full single-reviewer score cache behind
   {!column_denominators} and [adopt_static]. Not exported — the pruned
   backing's whole point is never to materialize an [n_p * n_r] cache,
   so consumers go through the backing-agnostic row accessors or
   {!Instance.pair_score}. *)
let score_matrix t =
  if t.k > 0 then
    invalid_arg "Gain_matrix.score_matrix: pruned matrix (O(n_p * n_r) cache)";
  match t.scores with
  | Some m -> m
  | None ->
      let m = Instance.score_matrix t.inst in
      t.scores <- Some m;
      m

(* Eq. 9 denominators: per-reviewer sums of the single-reviewer score
   matrix, COI cells (the [forbidden] sentinel) excluded. The one
   implementation shared by {!Sra.column_denominators} and the cached
   accessor below. *)
let score_column_sums ~n_reviewers rows =
  let denom = Array.make n_reviewers 0. in
  Array.iter
    (fun row ->
      for r = 0 to n_reviewers - 1 do
        if row.(r) <> Lap.Hungarian.forbidden then
          denom.(r) <- denom.(r) +. row.(r)
      done)
    rows;
  denom

(* The same sums without materializing the matrix: rows stream through
   one transient buffer in paper order, so the accumulation order — and
   hence every float — matches the cached dense computation exactly.
   O(n_r) live memory against the dense cache's O(n_p * n_r). *)
let streamed_column_sums ?deadline t =
  let module Timer = Wgrap_util.Timer in
  let denom = Array.make t.n_r 0. in
  for p = 0 to t.n_p - 1 do
    Timer.check_opt deadline;
    let row = Instance.score_row t.inst ~paper:p in
    for r = 0 to t.n_r - 1 do
      if row.(r) <> Lap.Hungarian.forbidden then
        denom.(r) <- denom.(r) +. row.(r)
    done
  done;
  denom

let column_denominators t =
  match t.denom with
  | Some d -> d
  | None ->
      let d =
        if t.k > 0 then streamed_column_sums t
        else score_column_sums ~n_reviewers:t.n_r (score_matrix t)
      in
      t.denom <- Some d;
      d

let adopt_static t ~from =
  if t.n_p <> from.n_p || t.n_r <> from.n_r then
    invalid_arg "Gain_matrix.adopt_static: shape mismatch";
  (match from.scores with Some m -> t.scores <- Some m | None -> ());
  match from.denom with Some d -> t.denom <- Some d | None -> ()

let spawn t =
  let s =
    {
      inst = t.inst;
      n_p = t.n_p;
      n_r = t.n_r;
      dim = t.dim;
      k = t.k;
      (* Candidate lists are immutable once retrieved: share the entries
         computed so far, but give the spawn its own slot array so
         domains never write into a shared one. *)
      cands = Array.copy t.cands;
      rows = Array.make t.n_p None;
      gvec = Array.make t.n_p None;
      version = Array.make t.n_p 0;
      row_version = Array.make t.n_p (-1);
      scratch_row = [||];
      scratch_vec = [||];
      scores = None;
      denom = None;
    }
  in
  adopt_static s ~from:t;
  s

let rebind t inst =
  if
    Instance.n_papers inst <> t.n_p
    || Instance.n_reviewers inst <> t.n_r
    || Instance.n_topics inst <> t.dim
  then invalid_arg "Gain_matrix.rebind: shape mismatch";
  let scoring_changed =
    not
      (String.equal
         (Scoring.name inst.Instance.scoring)
         (Scoring.name t.inst.Instance.scoring))
  in
  t.inst <- inst;
  (* Raw gain rows read only papers, reviewers and the scoring kind —
     never the COI mask (consumers mask conflicts) — so a constraint
     change keeps every row. A scoring change invalidates them (and the
     candidate rankings); reviewer-vector changes are the caller's
     contract to avoid ({!Instance.with_reviewers} needs a fresh
     matrix). *)
  if scoring_changed then
    for p = 0 to t.n_p - 1 do
      t.version.(p) <- t.version.(p) + 1;
      t.cands.(p) <- None;
      t.rows.(p) <- None
    done;
  t.scores <- None;
  t.denom <- None

(* Row-parallel iteration shared by {!prime} and {!rebuild}: rows are
   independent by construction ({!Instance.score_row}, one gain row per
   paper), and every worker polls the deadline so a budgeted caller can
   cut the pass off mid-way and fall back to lazy rows. *)
let iter_rows ?pool t f =
  let module Pool = Wgrap_par.Pool in
  match pool with
  | Some p when Pool.jobs p > 1 -> Pool.iter p ~n:t.n_p f
  | _ ->
      for paper = 0 to t.n_p - 1 do
        f paper
      done

let prime ?pool ?deadline t =
  let module Timer = Wgrap_util.Timer in
  if t.k > 0 then begin
    (* Pruned static state: every candidate list (slots are disjoint, so
       pool workers may fill them concurrently) and the streamed Eq. 9
       sums; the O(n_p * n_r) score matrix is never materialized. *)
    iter_rows ?pool t (fun paper ->
        Timer.check_opt deadline;
        match t.cands.(paper) with
        | Some _ -> ()
        | None ->
            t.cands.(paper) <- Some (Instance.candidates t.inst ~k:t.k ~paper));
    match t.denom with
    | Some _ -> ()
    | None -> t.denom <- Some (streamed_column_sums ?deadline t)
  end
  else begin
    (match t.scores with
    | Some _ -> ()
    | None ->
        let m = Array.make t.n_p [||] in
        iter_rows ?pool t (fun paper ->
            Timer.check_opt deadline;
            m.(paper) <- Instance.score_row t.inst ~paper);
        t.scores <- Some m);
    match t.denom with
    | Some _ -> ()
    | None ->
        t.denom <- Some (score_column_sums ~n_reviewers:t.n_r (score_matrix t))
  end

let rebuild ?pool ?deadline t =
  let module Timer = Wgrap_util.Timer in
  iter_rows ?pool t (fun paper ->
      Timer.check_opt deadline;
      if t.row_version.(paper) <> t.version.(paper) then
        if t.k > 0 then ensure_row_pruned t paper
        else
          (* Worker-local staging: n_r floats per stale row, so domains
             never write through the shared scratch. *)
          ensure_row_with t ~scratch:(Array.make t.n_r 0.) paper)
