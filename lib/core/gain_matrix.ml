(* Shared incremental gain matrix: one flat row-major [n_p * n_r] array
   of marginal coverage gains, maintained alongside the evolving
   assignment. Rows are versioned per paper and recomputed lazily with
   the sparse kernels; a group update that cannot change a row (it left
   the group vector untouched on the paper's support) does not
   invalidate it, so SDGA stages and SRA rounds recompute only the rows
   that actually moved. *)

type t = {
  inst : Instance.t;
  n_p : int;
  n_r : int;
  dim : int;
  data : float array;  (* row-major gains; cell (p, r) at p * n_r + r *)
  gvec : Topic_vector.t array;  (* maintained group vector per paper *)
  version : int array;  (* current group version per paper *)
  row_version : int array;  (* version [data]'s row reflects; -1 = never *)
  scratch_row : float array;  (* n_r, staging for gain_into *)
  scratch_vec : float array;  (* dim, staging for set_group *)
  mutable scores : float array array option;  (* cached score matrix *)
  mutable denom : float array option;  (* cached Eq. 9 column sums *)
}

let create inst =
  let n_p = Instance.n_papers inst and n_r = Instance.n_reviewers inst in
  let dim = Instance.n_topics inst in
  {
    inst;
    n_p;
    n_r;
    dim;
    data = Array.make (n_p * n_r) 0.;
    gvec = Array.init n_p (fun _ -> Array.make dim 0.);
    version = Array.make n_p 0;
    row_version = Array.make n_p (-1);
    scratch_row = Array.make n_r 0.;
    scratch_vec = Array.make dim 0.;
    scores = None;
    denom = None;
  }

let reset t =
  for p = 0 to t.n_p - 1 do
    Array.fill t.gvec.(p) 0 t.dim 0.;
    t.version.(p) <- t.version.(p) + 1
  done

(* Whether a change of the group vector at topic [tt] can move row [p].
   For the three kinds whose contribution vanishes off the paper's
   support, only supported topics matter; Reviewer_coverage gains read
   the group everywhere. *)
let relevant t ~paper tt =
  match t.inst.Instance.scoring with
  | Scoring.Reviewer_coverage -> true
  | _ -> t.inst.Instance.papers.(paper).(tt) > 0.

let add t ~paper ~reviewer =
  let rs = Instance.reviewer_support t.inst reviewer in
  let idx = rs.Topic_vector.idx and nz = rs.Topic_vector.nz in
  let g = t.gvec.(paper) in
  let changed = ref false in
  for k = 0 to Array.length idx - 1 do
    let tt = idx.(k) in
    if nz.(k) > g.(tt) then begin
      g.(tt) <- nz.(k);
      if not !changed then changed := relevant t ~paper tt
    end
  done;
  if !changed then t.version.(paper) <- t.version.(paper) + 1

let set_group t ~paper members =
  let nv = t.scratch_vec in
  Array.fill nv 0 t.dim 0.;
  List.iter
    (fun r ->
      let rs = Instance.reviewer_support t.inst r in
      let idx = rs.Topic_vector.idx and nz = rs.Topic_vector.nz in
      for k = 0 to Array.length idx - 1 do
        if nz.(k) > nv.(idx.(k)) then nv.(idx.(k)) <- nz.(k)
      done)
    members;
  let g = t.gvec.(paper) in
  let changed = ref false in
  (match t.inst.Instance.scoring with
  | Scoring.Reviewer_coverage ->
      for tt = 0 to t.dim - 1 do
        if nv.(tt) <> g.(tt) then changed := true
      done
  | _ ->
      let ps = Instance.paper_support t.inst paper in
      let idx = ps.Topic_vector.idx in
      for k = 0 to Array.length idx - 1 do
        let tt = idx.(k) in
        if nv.(tt) <> g.(tt) then changed := true
      done);
  Array.blit nv 0 g 0 t.dim;
  if !changed then t.version.(paper) <- t.version.(paper) + 1

let version t ~paper = t.version.(paper)
let group_vector t ~paper = t.gvec.(paper)

let gain t ~paper ~reviewer =
  Scoring.gain_sparse t.inst.Instance.scoring ~group:t.gvec.(paper)
    (Instance.reviewer_support t.inst reviewer)
    (Instance.paper_support t.inst paper)

(* Recompute row [paper] through [scratch] (any n_r buffer). The shared
   [t.scratch_row] serves the sequential callers; {!rebuild}'s workers
   pass their own buffer so domains never share staging memory. *)
let ensure_row_with t ~scratch paper =
  if t.row_version.(paper) <> t.version.(paper) then begin
    Scoring.gain_into t.inst.Instance.scoring ~dst:scratch
      ~group:t.gvec.(paper) ~reviewers:t.inst.Instance.rsupp
      (Instance.paper_support t.inst paper);
    Array.blit scratch 0 t.data (paper * t.n_r) t.n_r;
    t.row_version.(paper) <- t.version.(paper)
  end

let ensure_row t paper = ensure_row_with t ~scratch:t.scratch_row paper

let blit_row t ~paper ~dst =
  if Array.length dst <> t.n_r then
    invalid_arg "Gain_matrix.blit_row: dst length mismatch";
  ensure_row t paper;
  Array.blit t.data (paper * t.n_r) dst 0 t.n_r

let score_matrix t =
  match t.scores with
  | Some m -> m
  | None ->
      let m = Instance.score_matrix t.inst in
      t.scores <- Some m;
      m

(* Eq. 9 denominators: per-reviewer sums of the single-reviewer score
   matrix, COI cells (the [forbidden] sentinel) excluded. The one
   implementation shared by {!Sra.column_denominators} and the cached
   accessor below. *)
let score_column_sums ~n_reviewers rows =
  let denom = Array.make n_reviewers 0. in
  Array.iter
    (fun row ->
      for r = 0 to n_reviewers - 1 do
        if row.(r) <> Lap.Hungarian.forbidden then
          denom.(r) <- denom.(r) +. row.(r)
      done)
    rows;
  denom

let column_denominators t =
  match t.denom with
  | Some d -> d
  | None ->
      let d = score_column_sums ~n_reviewers:t.n_r (score_matrix t) in
      t.denom <- Some d;
      d

let adopt_static t ~from =
  if t.n_p <> from.n_p || t.n_r <> from.n_r then
    invalid_arg "Gain_matrix.adopt_static: shape mismatch";
  (match from.scores with Some m -> t.scores <- Some m | None -> ());
  match from.denom with Some d -> t.denom <- Some d | None -> ()

(* Row-parallel iteration shared by {!prime} and {!rebuild}: rows are
   independent by construction ({!Instance.score_row}, one gain row per
   paper), and every worker polls the deadline so a budgeted caller can
   cut the pass off mid-way and fall back to lazy rows. *)
let iter_rows ?pool t f =
  let module Pool = Wgrap_par.Pool in
  match pool with
  | Some p when Pool.jobs p > 1 -> Pool.iter p ~n:t.n_p f
  | _ ->
      for paper = 0 to t.n_p - 1 do
        f paper
      done

let prime ?pool ?deadline t =
  let module Timer = Wgrap_util.Timer in
  (match t.scores with
  | Some _ -> ()
  | None ->
      let m = Array.make t.n_p [||] in
      iter_rows ?pool t (fun paper ->
          Timer.check_opt deadline;
          m.(paper) <- Instance.score_row t.inst ~paper);
      t.scores <- Some m);
  match t.denom with
  | Some _ -> ()
  | None ->
      t.denom <- Some (score_column_sums ~n_reviewers:t.n_r (score_matrix t))

let rebuild ?pool ?deadline t =
  let module Timer = Wgrap_util.Timer in
  iter_rows ?pool t (fun paper ->
      Timer.check_opt deadline;
      if t.row_version.(paper) <> t.version.(paper) then
        (* Worker-local staging: n_r floats per stale row, so domains
           never write through the shared scratch. *)
        ensure_row_with t ~scratch:(Array.make t.n_r 0.) paper)
