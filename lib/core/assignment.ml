type t = { groups : int list array }

let empty ~n_papers = { groups = Array.make n_papers [] }
let copy t = { groups = Array.copy t.groups }

let of_pairs ~n_papers pairs =
  let t = empty ~n_papers in
  List.iter
    (fun (r, p) ->
      if p < 0 || p >= n_papers then invalid_arg "Assignment.of_pairs: bad paper";
      t.groups.(p) <- r :: t.groups.(p))
    pairs;
  t

let pairs t =
  let acc = ref [] in
  for p = Array.length t.groups - 1 downto 0 do
    List.iter (fun r -> acc := (r, p) :: !acc) t.groups.(p)
  done;
  !acc

let group t p = t.groups.(p)
let add t ~paper ~reviewer = t.groups.(paper) <- reviewer :: t.groups.(paper)
let size t = Array.fold_left (fun acc g -> acc + List.length g) 0 t.groups

let workloads t ~n_reviewers =
  let w = Array.make n_reviewers 0 in
  Array.iter (List.iter (fun r -> w.(r) <- w.(r) + 1)) t.groups;
  w

let group_vector inst t p =
  let dim = Instance.n_topics inst in
  let acc = Scoring.empty_group ~dim in
  List.iter
    (fun r -> Topic_vector.extend_max_into ~dst:acc inst.Instance.reviewers.(r))
    t.groups.(p);
  acc

let paper_score inst t p =
  Scoring.score inst.Instance.scoring (group_vector inst t p)
    inst.Instance.papers.(p)

let coverage inst t =
  let acc = ref 0. in
  for p = 0 to Array.length t.groups - 1 do
    acc := !acc +. paper_score inst t p
  done;
  !acc

(* The canonical serialization: one line per paper, [paper \t ids].
   Reviewer ids are written in reverse list order so that {!of_lines}'s
   [List.rev] restores the in-memory order exactly — group lists are
   semantically unordered, but byte-exact round-tripping is what lets a
   resumed stochastic refinement replay the uninterrupted run's stream
   of victim draws. *)
let to_lines t =
  Array.to_list
    (Array.mapi
       (fun p group ->
         Printf.sprintf "%d\t%s" p
           (String.concat ";" (List.map string_of_int (List.rev group))))
       t.groups)

let of_lines ~n_papers lines =
  let ( let* ) = Result.bind in
  let t = empty ~n_papers in
  let seen = Array.make n_papers false in
  let rec go lineno = function
    | [] -> Ok t
    | "" :: rest -> go (lineno + 1) rest
    | line :: rest -> (
        match String.split_on_char '\t' line with
        | [ p; rs ] -> (
            match int_of_string_opt p with
            | Some p when p >= 0 && p < n_papers && not seen.(p) ->
                seen.(p) <- true;
                let ids =
                  String.split_on_char ';' rs
                  |> List.filter (fun s -> s <> "")
                  |> List.map int_of_string_opt
                in
                let* ids =
                  if List.for_all Option.is_some ids then
                    Ok (List.map Option.get ids)
                  else Error (Printf.sprintf "line %d: bad reviewer id" lineno)
                in
                t.groups.(p) <- List.rev ids;
                go (lineno + 1) rest
            | _ -> Error (Printf.sprintf "line %d: bad paper id" lineno))
        | _ -> Error (Printf.sprintf "line %d: expected 2 fields" lineno))
  in
  go 1 lines

let save_tsv t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (fun line -> output_string oc (line ^ "\n")) (to_lines t))

let load_tsv ~n_papers path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      of_lines ~n_papers (read []))

let equal a b =
  Array.length a.groups = Array.length b.groups
  && Array.for_all2
       (fun ga gb ->
         List.sort_uniq compare ga = List.sort_uniq compare gb)
       a.groups b.groups

let validate_gen ~exact inst t =
  let n_p = Instance.n_papers inst and n_r = Instance.n_reviewers inst in
  if Array.length t.groups <> n_p then Error "paper count mismatch"
  else begin
    let workload = Array.make n_r 0 in
    let rec check_papers p =
      if p = n_p then Ok ()
      else begin
        let g = t.groups.(p) in
        let rec check_group seen = function
          | [] ->
              let size = List.length g in
              if size <> inst.Instance.delta_p && (exact || size > inst.Instance.delta_p)
              then
                Error
                  (Printf.sprintf "paper %d has %d reviewers, needs %s%d" p size
                     (if exact then "" else "at most ")
                     inst.Instance.delta_p)
              else check_papers (p + 1)
          | r :: rest ->
              if r < 0 || r >= n_r then Error "reviewer index out of range"
              else if List.mem r seen then
                Error (Printf.sprintf "paper %d repeats reviewer %d" p r)
              else if Instance.forbidden inst ~paper:p ~reviewer:r then
                Error (Printf.sprintf "COI pair (r%d, p%d) used" r p)
              else begin
                workload.(r) <- workload.(r) + 1;
                check_group (r :: seen) rest
              end
        in
        check_group [] g
      end
    in
    match check_papers 0 with
    | Error _ as e -> e
    | Ok () ->
        let bad = ref None in
        Array.iteri
          (fun r w ->
            if w > inst.Instance.delta_r && !bad = None then bad := Some (r, w))
          workload;
        (match !bad with
        | Some (r, w) ->
            Error
              (Printf.sprintf "reviewer %d has workload %d > delta_r=%d" r w
                 inst.Instance.delta_r)
        | None -> Ok ())
  end

let validate inst t = validate_gen ~exact:true inst t
let validate_partial inst t = validate_gen ~exact:false inst t
let is_feasible inst t = Result.is_ok (validate inst t)
