(** A WGRAP problem instance (Definition 3): papers, reviewers, the group
    size constraint delta_p, the reviewer workload delta_r, conflicts of
    interest, and the scoring function in force. *)

type t = private {
  papers : Topic_vector.t array;
  reviewers : Topic_vector.t array;
  delta_p : int;  (** reviewers per paper (exactly) *)
  delta_r : int;  (** papers per reviewer (at most) *)
  scoring : Scoring.kind;
  coi : bool array array option;  (** [coi.(p).(r)] forbids pair (r, p) *)
  psupp : Topic_vector.support array;  (** compiled paper supports *)
  rsupp : Topic_vector.support array;  (** compiled reviewer supports *)
  cindex : Candidate_index.t;  (** inverted topic → reviewer index *)
}

val create :
  ?scoring:Scoring.kind ->
  ?coi:(int * int) list ->
  papers:Topic_vector.t array ->
  reviewers:Topic_vector.t array ->
  delta_p:int ->
  delta_r:int ->
  unit ->
  (t, string) result
(** Validates: non-empty sides, uniform dimensions, non-negative vectors,
    [1 <= delta_p <= R], [delta_r >= 1], capacity
    [R * delta_r >= P * delta_p], and COI pairs in range (given as
    [(paper, reviewer)] index pairs). *)

val create_exn :
  ?scoring:Scoring.kind ->
  ?coi:(int * int) list ->
  papers:Topic_vector.t array ->
  reviewers:Topic_vector.t array ->
  delta_p:int ->
  delta_r:int ->
  unit ->
  t
(** As {!create} but raising [Invalid_argument]. *)

val n_papers : t -> int
val n_reviewers : t -> int
val n_topics : t -> int

val forbidden : t -> paper:int -> reviewer:int -> bool
(** Whether (reviewer, paper) is a conflict of interest. *)

val paper_support : t -> int -> Topic_vector.support
val reviewer_support : t -> int -> Topic_vector.support
(** Compiled sparse views (nonzero topic indices, values, mass),
    precomputed at construction for the O(nnz) scoring kernels. *)

val pair_score : t -> paper:int -> reviewer:int -> float
(** c(r, p) under the instance's scoring function. *)

val score_matrix : t -> float array array
(** [P x R] matrix of single-reviewer scores; COI cells hold
    [Lap.Hungarian.forbidden]. Freshly computed — callers that need it
    repeatedly should keep the result. *)

val score_row : t -> paper:int -> float array
(** One freshly allocated row of {!score_matrix}. Rows are independent,
    which is what lets {!Gain_matrix.rebuild} compute them from separate
    domains. *)

val min_workload : papers:int -> reviewers:int -> delta_p:int -> int
(** The paper's experimental default [delta_r = ceil (P * delta_p / R)]:
    the minimum balanced workload. *)

val stage_capacity : t -> int
(** [ceil (delta_r / delta_p)]: the per-stage reviewer workload cap used
    by Stage-WGRAP (Definition 9). *)

val with_scoring : t -> Scoring.kind -> t
(** Same instance under a different scoring function (cache dropped). *)

val with_reviewers : t -> Topic_vector.t array -> t
(** Same instance with rescaled reviewer vectors (e.g. the h-index
    scaling of Eq. 15); dimensions must match. *)

val candidates : t -> k:int -> paper:int -> int array
(** The paper's top-k candidate reviewers by exact pair score, from the
    inverted topic index compiled at construction
    ({!Candidate_index.top_k} under the instance's scoring kind, with
    the paper's COI filtered out so conflicts never burn a candidate
    slot). Ascending reviewer ids; may be shorter than [k] for papers
    whose support touches few reviewers. *)

val coi_pairs : t -> (int * int) list
(** The instance's conflicts as [(paper, reviewer)] pairs. *)

val add_coi : t -> (int * int) list -> (t, string) result
(** Same instance with additional conflicts (validated for range). *)
