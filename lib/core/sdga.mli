(** Stage Deepening Greedy Algorithm (Section 4.2, Algorithm 2).

    The assignment is built in exactly [delta_p] stages; each stage
    gives every paper one more reviewer by solving a Stage-WGRAP linear
    assignment, with the per-stage reviewer workload confined to
    [ceil(delta_r / delta_p)] so that every reviewer stays available in
    the tail stages.

    Guarantees (Theorems 1-2): the result is a (1 - 1/e)-approximation
    when [delta_p] divides [delta_r], and a 1/2-approximation in
    general — for any scoring function satisfying Lemma 4. *)

val solve : ?ctx:Ctx.t -> Instance.t -> Assignment.t
(** Run environment comes from [ctx] ({!Ctx.default} when omitted):

    - [ctx.gains], when set, is reset and used as the shared gain matrix
      for every stage (and left holding the final groups, so a follow-up
      {!Sra.refine} can reuse it); otherwise a private one is created
      with [ctx.candidates] as its width — [k > 0] selects the
      candidate-pruned backing, switching every stage to the pruned
      {!Stage.solve} backend with O(n_p * k) matrix memory; [0] (the
      default) is the dense parity oracle.
    - [ctx.deadline] is checked between stages and inside the stage
      backend; on expiry the stages completed so far are kept and the
      remaining slots are filled greedily by {!Repair}, so the result
      stays feasible — degraded towards per-slot greedy rather than
      failing.
    - [ctx.checkpoint] receives a {!Checkpoint.Stage_done} event and a
      snapshot offer after every committed stage.
    - [ctx.resume_from] (when [Ok state] in phase
      {!Checkpoint.Sdga_stage}) re-enters the stage loop after the
      captured stage: the saved partial assignment is copied in,
      reviewer workloads and the gain matrix are rebuilt from it, and
      the remaining stages run as they would have — the result is
      identical to the uninterrupted run (stages are deterministic). A
      resume in any other phase (or an [Error _]) is ignored and the
      solve starts fresh.
    - [ctx.pool], when parallel, prefills all stale gain rows across
      domains ({!Gain_matrix.rebuild}) before the stage loop; the stage
      LAPs themselves stay sequential. Bit-identical at any job count.
    - [ctx.objective] is bound to the instance and consulted for every
      stage gain ({!Objective.stage_gain}) and checkpoint score
      ({!Objective.value}); the default coverage objective is
      bit-identical to the pre-objective path. Note SDGA's guarantee
      only holds when the objective is submodular and monotone —
      {!Solver.cra} routes non-submodular specs (OWA) through a
      greedy-led chain instead.

    Raises [Failure] only if the instance is infeasible under its COIs
    (capacity alone is validated at instance construction). Stages are
    solved by {!Stage.solve} (Hungarian backend). *)

val approximation_ratio : delta_p:int -> integral:bool -> float
(** The analytic bound plotted in Figure 7:
    [1 - (1 - 1/delta_p)^delta_p] for integral cases ([delta_p] divides
    [delta_r]), [1 - (1 - 1/delta_p)^(delta_p - 1)] otherwise. *)

val solve_flow : ?ctx:Ctx.t -> Instance.t -> Assignment.t
(** Ablation variant: stages solved by min-cost flow
    ({!Stage.solve_flow}). Same stage optima, different constants
    (compared in the ablation bench). *)
