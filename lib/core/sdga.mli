(** Stage Deepening Greedy Algorithm (Section 4.2, Algorithm 2).

    The assignment is built in exactly [delta_p] stages; each stage
    gives every paper one more reviewer by solving a Stage-WGRAP linear
    assignment, with the per-stage reviewer workload confined to
    [ceil(delta_r / delta_p)] so that every reviewer stays available in
    the tail stages.

    Guarantees (Theorems 1-2): the result is a (1 - 1/e)-approximation
    when [delta_p] divides [delta_r], and a 1/2-approximation in
    general — for any scoring function satisfying Lemma 4. *)

val solve :
  ?deadline:Wgrap_util.Timer.deadline ->
  ?gains:Gain_matrix.t ->
  ?checkpoint:Checkpoint.sink ->
  ?resume_from:Checkpoint.state ->
  Instance.t ->
  Assignment.t
(** [gains], when given, is reset and used as the shared gain matrix
    for every stage (and left holding the final groups, so a follow-up
    {!Sra.refine} can reuse it); otherwise a private one is created.
    Raises [Failure] only if the instance is infeasible under its COIs
    (capacity alone is validated at instance construction). Stages are
    solved by {!Stage.solve} (Hungarian backend). When [deadline]
    expires (checked between stages and inside the stage backend), the
    stages completed so far are kept and the remaining slots are filled
    greedily by {!Repair}, so the result stays feasible — degraded
    towards per-slot greedy rather than failing.

    [checkpoint] receives a {!Checkpoint.Stage_done} event and a
    snapshot offer after every committed stage. [resume_from] re-enters
    the stage loop after the captured {!Checkpoint.Sdga_stage}: the
    saved partial assignment is copied in, reviewer workloads and the
    gain matrix are rebuilt from it, and the remaining stages run as
    they would have — the result is identical to the uninterrupted run
    (stages are deterministic). A [resume_from] in any other phase is
    ignored and the solve starts fresh. *)

val approximation_ratio : delta_p:int -> integral:bool -> float
(** The analytic bound plotted in Figure 7:
    [1 - (1 - 1/delta_p)^delta_p] for integral cases ([delta_p] divides
    [delta_r]), [1 - (1 - 1/delta_p)^(delta_p - 1)] otherwise. *)

val solve_flow :
  ?deadline:Wgrap_util.Timer.deadline ->
  ?gains:Gain_matrix.t ->
  ?checkpoint:Checkpoint.sink ->
  ?resume_from:Checkpoint.state ->
  Instance.t ->
  Assignment.t
(** Ablation variant: stages solved by min-cost flow
    ({!Stage.solve_flow}). Same stage optima, different constants
    (compared in the ablation bench). *)
