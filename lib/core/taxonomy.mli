(** A topic taxonomy: a rooted forest over the instance's topic
    indices, backing the hierarchical keyword-similarity objective
    ({!Objective.Taxonomy}, after Kalmukov's taxonomy-weighted reviewer
    assignment). A reviewer whose expertise sits at "databases"
    partially covers a paper tagged "query optimization": expertise
    bleeds along tree edges with a per-hop decay factor. *)

type t

val create : int array -> (t, string) result
(** [create parent] builds the forest where [parent.(v)] is topic [v]'s
    parent and [-1] marks a root. Rejects empty arrays, out-of-range
    parents, self-loops and cycles. *)

val create_exn : int array -> t
(** As {!create} but raising [Invalid_argument]. *)

val balanced : dim:int -> arity:int -> t
(** A balanced [arity]-ary tree over [dim] topics rooted at topic 0
    (node [v] hangs under [(v - 1) / arity]) — the synthetic default
    for presets with no curated tree. *)

val dim : t -> int
(** Number of topics; must equal the bound instance's dimension. *)

val parent : t -> int -> int
(** Parent topic id, [-1] for roots. *)

val depth : t -> int -> int
(** Hops to the root; 0 for roots. *)

val distance : t -> int -> int -> int option
(** Tree distance in hops through the lowest common ancestor; [None]
    when the nodes lie in different trees of the forest. *)

val similarity : t -> decay:float -> int -> int -> float
(** [decay ^ distance], 1 on the diagonal, 0 across disconnected
    trees. *)

val smooth : t -> decay:float -> float array -> float array
(** Tree-smoothed expertise: [smoothed.(u) = max_v vec.(v) *
    decay^distance(u, v)] — computed in O(dim) with an up-then-down
    sweep over the depth order (exact for tree metrics, where every
    path decomposes at the LCA; the brute-force O(dim²) walk is the
    test oracle). [decay] must lie in [0, 1]; [decay = 0] is the
    identity on supports (0^0 = 1), [decay = 1] floods each tree with
    its maximum. *)

val of_lines : dim:int -> string list -> (t, string) result
(** Parse the TSV edge list: one [child \t parent] per line, parent
    [-1] or [-] for an explicit root, [#]-comments and blank lines
    skipped. Topics never mentioned default to roots. *)

val to_lines : t -> string list
(** Inverse of {!of_lines} (root lines omitted). *)
