module Solver = Wgrap.Solver
module Timer = Wgrap_util.Timer

type config = {
  dim : int;
  delta_p : int;
  delta_r : int;
  objective : Wgrap.Objective.spec;
  event_budget : float option;
  improve_slice : float;
  queue_limit : int;
  p99_limit_ms : float;
  snapshot_every : int;
  max_restarts : int;
  max_line : int;
  idle_poll : float;
}

let default ~dim ~delta_p ~delta_r =
  {
    dim;
    delta_p;
    delta_r;
    objective = Wgrap.Objective.coverage;
    event_budget = Some 0.05;
    improve_slice = 0.02;
    queue_limit = 64;
    p99_limit_ms = 250.;
    snapshot_every = 64;
    max_restarts = 5;
    max_line = 65536;
    idle_poll = 0.2;
  }

type counters = {
  mutable accepted : int;
  mutable rejected : int;
  mutable improved : int;
  mutable degraded : int;
  mutable restarts : int;
}

type t = {
  cfg : config;
  state : State.t;
  durable : Durable.t option;
  admission : Admission.t;
  counters : counters;
  exhausted : (int, unit) Hashtbl.t;
      (** pending papers the improvement pass gave up on; cleared on
          every accepted mutation (new capacity may unblock them) *)
  mutable improve_idle : bool;
  mutable line_no : int;
  mutable entries_since_snapshot : int;
}

(* A commit failure after a successful journal append: planner bug or
   memory corruption. The entry was never acked and replay
   certification rejects it, so fail-stop keeps the durable history
   honest. *)
exception Fatal of string

let make ?durable cfg state =
  (* the snapshot codec never records the objective (it is planner-only
     config), so a decoded state always arrives with coverage; install
     the configured one here. Dimension mismatches were caught when the
     config was built, so failure here is a programming error. *)
  (match State.set_objective state cfg.objective with
  | Ok () -> ()
  | Error m -> invalid_arg ("Server.make: " ^ m));
  {
    cfg;
    state;
    durable;
    admission =
      Admission.create ~max_queue:cfg.queue_limit
        ~p99_limit_ms:cfg.p99_limit_ms ();
    counters =
      { accepted = 0; rejected = 0; improved = 0; degraded = 0; restarts = 0 };
    exhausted = Hashtbl.create 16;
    improve_idle = false;
    line_no = 0;
    entries_since_snapshot = 0;
  }

let of_state ?durable cfg state = make ?durable cfg state

let create ?durable cfg =
  Result.map (make ?durable cfg)
    (State.create ~dim:cfg.dim ~delta_p:cfg.delta_p ~delta_r:cfg.delta_r ())

let state t = t.state

(* {1 Durability plumbing} *)

let journal_entry t entry =
  match t.durable with
  | None -> Ok ()
  | Some d -> Durable.append d (Event.encode_entry entry)

let snapshot_now t =
  match t.durable with
  | None -> ()
  | Some d -> (
      match Durable.snapshot d (State.encode t.state) with
      | Ok () -> t.entries_since_snapshot <- 0
      | Error _ ->
          (* recorded in [Durable.snapshot_failed]; surfaced by health.
             The journal still holds everything, so durability is
             intact — only replay time grows. *)
          ())

let after_commit t =
  t.entries_since_snapshot <- t.entries_since_snapshot + 1;
  if t.entries_since_snapshot >= t.cfg.snapshot_every then snapshot_now t

let quarantine t ~reason raw =
  match t.durable with
  | None -> ()
  | Some d -> Durable.quarantine d ~line:t.line_no ~reason raw

(* {1 Request handling} *)

let reject t ~id ~reason raw =
  t.counters.rejected <- t.counters.rejected + 1;
  quarantine t ~reason raw;
  Printf.sprintf "err %s line=%d %s" id t.line_no reason

let answer_read t id (r : Event.read) =
  match r with
  | Event.Query p -> (
      match State.query t.state p with
      | None ->
          reject t ~id:(string_of_int id)
            ~reason:(Printf.sprintf "unknown paper %d" p)
            (Printf.sprintf "%d query %d" id p)
      | Some a ->
          Printf.sprintf "ok %d paper=%d group=%s score=%.6f short=%b pending=%b"
            id p
            (match a.State.group with
            | [] -> "-"
            | g -> String.concat "," (List.map string_of_int g))
            a.State.score a.State.short a.State.is_pending)
  | Event.Health ->
      let journal, snapshot =
        match t.durable with
        | None -> ("none", "none")
        | Some d ->
            ( (match Durable.journal_failed d with Some _ -> "failed" | None -> "ok"),
              match Durable.snapshot_failed d with
              | Some _ -> "failed"
              | None -> "ok" )
      in
      let overall = if journal = "failed" then "degraded" else "ok" in
      Printf.sprintf "ok %d health=%s journal=%s snapshot=%s pending=%d restarts=%d"
        id overall journal snapshot
        (List.length (State.pending t.state))
        t.counters.restarts
  | Event.Stats -> (
      (* one compact JSON document per line: the service counters, then
         the same summary rendering `wgrap assign --json` uses *)
      let extra =
        [
          ("accepted", string_of_int t.counters.accepted);
          ("rejected", string_of_int t.counters.rejected);
          ("shed", string_of_int (Admission.shed_count t.admission));
          ("improved", string_of_int t.counters.improved);
          ("degraded", string_of_int t.counters.degraded);
          ("seq", string_of_int (State.applied t.state));
          ("pending", string_of_int (List.length (State.pending t.state)));
          ("p99_ms", Printf.sprintf "%.1f" (Admission.p99_ms t.admission));
        ]
      in
      match State.summary t.state with
      | Some s ->
          Printf.sprintf "ok %d stats %s" id
            (Wgrap.Summary.to_json ~compact:true ~extra s)
      | None ->
          (* roster not dense yet (no papers or reviewers): counters only *)
          Printf.sprintf "ok %d stats {%s, \"papers\": %d, \"reviewers\": %d}"
            id
            (String.concat ", "
               (List.map
                  (fun (k, v) -> Wgrap.Summary.json_string k ^ ": " ^ v)
                  extra))
            (State.n_papers t.state)
            (State.n_reviewers t.state))

let handle_mutation t id (req : Event.req) raw =
  let sid = string_of_int id in
  if id <= State.last_client t.state then
    reject t ~id:sid
      ~reason:
        (Printf.sprintf
           "event id %d not above last accepted id %d (duplicate or \
            out-of-order)"
           id
           (State.last_client t.state))
      raw
  else
    match State.validate_req t.state req with
    | Error reason -> reject t ~id:sid ~reason raw
    | Ok () -> (
        let started = Timer.now () in
        let deadline = Option.map Timer.deadline t.cfg.event_budget in
        let planned = State.plan ?deadline t.state req in
        let seq = State.applied t.state + 1 in
        let entry = Event.Client { seq; id; req; ops = planned.State.ops } in
        match journal_entry t entry with
        | Error m -> reject t ~id:sid ~reason:m raw
        | Ok () -> (
            match State.commit t.state entry with
            | Error m ->
                raise
                  (Fatal
                     (Printf.sprintf "commit of journaled entry %d failed: %s"
                        seq m))
            | Ok () ->
                t.counters.accepted <- t.counters.accepted + 1;
                Hashtbl.reset t.exhausted;
                t.improve_idle <- false;
                after_commit t;
                Admission.observe t.admission
                  (1000. *. (Timer.now () -. started));
                let status, detail =
                  match planned.State.reasons with
                  | [] ->
                      let short =
                        List.exists
                          (function Event.Pend _ -> true | _ -> false)
                          planned.State.ops
                      in
                      ((if short then "short" else "complete"), "")
                  | r :: _ ->
                      t.counters.degraded <- t.counters.degraded + 1;
                      ( "degraded",
                        Printf.sprintf " detail=%S"
                          (Solver.describe_reason ~event:id ?deadline r) )
                in
                Printf.sprintf "ok %d seq=%d status=%s%s" id seq status detail))

let handle_line t raw =
  t.line_no <- t.line_no + 1;
  if raw = "" then reject t ~id:"-" ~reason:"empty line" raw
  else
    match Event.parse ~dim:(State.dim t.state) raw with
    | Error reason -> reject t ~id:(Event.request_id raw) ~reason raw
    | Ok { Event.id; request = Event.Read r } -> answer_read t id r
    | Ok { Event.id; request = Event.Mutate req } -> handle_mutation t id req raw

(* {1 Idle improvement} *)

let improve_once t =
  if t.improve_idle then false
  else begin
    let deadline = Timer.deadline t.cfg.improve_slice in
    let rec go () =
      match
        State.plan_improve ~deadline ~skip:(Hashtbl.mem t.exhausted) t.state
      with
      | State.Idle ->
          t.improve_idle <- true;
          false
      | State.Exhausted p ->
          Hashtbl.replace t.exhausted p ();
          if Timer.expired deadline then false else go ()
      | State.Improved ops -> (
          let seq = State.applied t.state + 1 in
          let entry = Event.Improve { seq; ops } in
          match journal_entry t entry with
          | Error _ ->
              (* durability first: an unjournaled improvement is not
                 applied. Park the paper until the next mutation. *)
              (match ops with
              | Event.Set_group { paper; _ } :: _
              | Event.Pend paper :: _
              | Event.Unpend paper :: _ ->
                  Hashtbl.replace t.exhausted paper ()
              | [] -> ());
              false
          | Ok () -> (
              match State.commit t.state entry with
              | Error m ->
                  raise
                    (Fatal
                       (Printf.sprintf
                          "commit of journaled improvement %d failed: %s" seq m))
              | Ok () ->
                  t.counters.improved <- t.counters.improved + 1;
                  after_commit t;
                  true))
    in
    go ()
  end

(* {1 The event loop} *)

let run t ~input ~output =
  let tr = Transport.of_fd ~max_line:t.cfg.max_line input in
  let q = Queue.create () in
  let eof = ref false in
  let output_gone = ref false in
  let respond s =
    if not !output_gone then
      try
        output_string output s;
        output_char output '\n';
        flush output
      with Sys_error _ | Unix.Unix_error (Unix.EPIPE, _, _) ->
        (* The client vanished before reading this response (EPIPE /
           closed pipe; requires SIGPIPE to be ignored, see
           [serve_socket]). Everything journaled so far is durable, and
           an at-least-once client retries whatever it never saw acked —
           but accepting more events whose acks cannot be delivered
           helps nobody, so treat the conversation as over. *)
        output_gone := true;
        eof := true
  in
  let busy_response raw ms =
    Printf.sprintf "busy %s retry-after=%d" (Event.request_id raw) ms
  in
  (* Admit or shed everything already readable; optionally block
     [idle_poll] for the first line when there is nothing else to do. *)
  let drain_input ~block =
    let rec go first =
      if !eof then ()
      else
        let timeout = if first && block then t.cfg.idle_poll else 0. in
        match Transport.read_line tr ~timeout with
        | Transport.Line raw ->
            t.line_no <- t.line_no + 1;
            (match Admission.decide t.admission ~depth:(Queue.length q) with
            | Admission.Admit -> Queue.add (t.line_no, raw) q
            | Admission.Shed ms -> respond (busy_response raw ms));
            go false
        | Transport.Oversized ->
            t.line_no <- t.line_no + 1;
            t.counters.rejected <- t.counters.rejected + 1;
            quarantine t ~reason:"oversized line discarded" "";
            respond
              (Printf.sprintf "err - line=%d oversized line discarded"
                 t.line_no);
            go false
        | Transport.Timeout -> ()
        | Transport.Eof -> eof := true
    in
    go true
  in
  let process (line_no, raw) =
    (* [handle_line] numbers lines itself, but this line's number was
       already assigned at read time; pin it for the handler and then
       restore the high-water mark so read-ahead numbering continues *)
    let mark = t.line_no in
    t.line_no <- line_no - 1;
    let resp = handle_line t raw in
    t.line_no <- max mark t.line_no;
    respond resp
  in
  let improvable () = (not t.improve_idle) && State.pending t.state <> [] in
  let rec loop () =
    (* lines admitted before the client vanished can no longer be
       acked; drop them un-journaled so the retry is clean *)
    if !output_gone then Queue.clear q;
    drain_input ~block:(Queue.is_empty q && not (improvable ()));
    if not (Queue.is_empty q) then begin
      process (Queue.pop q);
      loop ()
    end
    else if improvable () then begin
      ignore (improve_once t : bool);
      loop ()
    end
    else if not !eof then loop ()
    else snapshot_now t
  in
  (* The loop supervisor: bounded restarts with capped exponential
     backoff. [Fatal] (journaled-entry commit failure) is not
     restartable — the same entry would fail the same way. *)
  let backoff = ref 0.05 in
  let rec supervise () =
    match loop () with
    | () -> Ok ()
    | exception Fatal m -> Error ("fatal: " ^ m)
    | exception e ->
        if t.counters.restarts >= t.cfg.max_restarts then
          Error
            (Printf.sprintf "event loop failed after %d restarts: %s"
               t.counters.restarts (Printexc.to_string e))
        else begin
          t.counters.restarts <- t.counters.restarts + 1;
          Printf.eprintf "wgrap serve: event loop fault: %s; restart %d/%d in %.0f ms\n%!"
            (Printexc.to_string e) t.counters.restarts t.cfg.max_restarts
            (1000. *. !backoff);
          Unix.sleepf !backoff;
          backoff := Float.min 2. (!backoff *. 2.);
          supervise ()
        end
  in
  supervise ()

let serve_socket ?max_clients t ~path =
  (* A client that disconnects before reading its responses must not
     kill the service: with SIGPIPE ignored the write fails with EPIPE
     instead, which [run]'s respond treats as end-of-conversation. *)
  if Sys.unix then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Transport.listen_unix ~path with
  | Error m -> Error m
  | Ok lfd ->
      let finally () = try Unix.close lfd with Unix.Unix_error _ -> () in
      let rec accept_loop served =
        match max_clients with
        | Some n when served >= n ->
            finally ();
            Ok ()
        | _ -> (
            match Transport.accept lfd ~timeout:t.cfg.idle_poll with
            | None ->
                (* between clients there is idle time too *)
                if State.pending t.state <> [] then ignore (improve_once t : bool);
                accept_loop served
            | Some client -> (
                let output = Unix.out_channel_of_descr client in
                let r = run t ~input:client ~output in
                (try Unix.close client with Unix.Unix_error _ -> ());
                match r with
                | Ok () -> accept_loop (served + 1)
                | Error _ as e ->
                    finally ();
                    e))
      in
      accept_loop 0

(* {1 Recovery} *)

let fold_entries state records =
  (* Replay verified journal payloads onto [state]. A CRC-valid record
     the fold cannot decode or commit poisons the journal: replay stops
     there forever, so anything appended after it — fsynced, acked, it
     does not matter — is unreachable by every future replay. The stop
     is reported (reason + how many records are stranded behind it),
     and callers must refuse to append past it rather than serve on.
     [last_seq] is the highest entry seq the journal holds, committed
     or snapshot-covered. *)
  let rec go n last = function
    | [] -> (n, last, None)
    | payload :: rest -> (
        match Event.decode_entry payload with
        | Error m ->
            (n, last, Some (Printf.sprintf "an undecodable entry (%s)" m, rest))
        | Ok entry ->
            let seq = Event.entry_seq entry in
            let last = max last seq in
            if seq <= State.applied state then go n last rest
            else
              match State.commit state entry with
              | Ok () -> go (n + 1) last rest
              | Error m ->
                  (n, last, Some (Printf.sprintf "seq %d (%s)" seq m, rest)))
  in
  go 0 0 records

let load_state cfg ~dir =
  let ( let* ) = Result.bind in
  let loaded = Durable.load ~dir in
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun m -> notes := !notes @ [ m ]) fmt in
  if loaded.Durable.torn then note "journal: torn tail truncated";
  (match loaded.Durable.snapshot_error with
  | Some m -> note "snapshot rejected (%s); refolding journal from scratch" m
  | None -> ());
  let* base =
    match loaded.Durable.snapshot with
    | None -> State.create ~dim:cfg.dim ~delta_p:cfg.delta_p ~delta_r:cfg.delta_r ()
    | Some img -> (
        match State.decode img with
        | Ok st ->
            if
              State.dim st <> cfg.dim
              || State.delta_p st <> cfg.delta_p
              || State.delta_r st <> cfg.delta_r
            then
              Error
                (Printf.sprintf
                   "snapshot config (dim=%d delta-p=%d delta-r=%d) does not \
                    match the requested service config"
                   (State.dim st) (State.delta_p st) (State.delta_r st))
            else Ok st
        | Error m ->
            note "snapshot failed certification (%s); refolding journal" m;
            State.create ~dim:cfg.dim ~delta_p:cfg.delta_p ~delta_r:cfg.delta_r ())
  in
  let snap_seq = State.applied base in
  let replayed, last_seq, stopped = fold_entries base loaded.Durable.records in
  match stopped with
  | Some (what, stranded) ->
      (* serving on would append entries with seqs colliding with the
         stranded records — fsynced, acked, and lost on the next
         restart. Operator intervention, not silent loss. *)
      Error
        (Printf.sprintf
           "journal replay stopped at %s with %d record(s) stranded after \
            it; refusing to serve — events accepted now would be \
            unreachable by every future replay. Repair or archive %s and \
            restart"
           what
           (List.length stranded)
           (Durable.journal_path dir))
  | None ->
      if snap_seq > last_seq then
        (* the snapshot certifies events the journal no longer holds —
           the signature of a lost acked prefix (deleted or truncated
           journal). The fold oracle can never reach this state. *)
        Error
          (Printf.sprintf
             "snapshot is at seq %d but the journal only reaches seq %d: \
              acknowledged events are missing from the journal; refusing \
              to serve on a history that cannot be replayed"
             snap_seq last_seq)
      else begin
        note "replayed %d journal entries (state at seq %d)" replayed
          (State.applied base);
        Ok (base, !notes)
      end

let verify cfg ~dir =
  let ( let* ) = Result.bind in
  let loaded = Durable.load ~dir in
  let* folded =
    State.create ~dim:cfg.dim ~delta_p:cfg.delta_p ~delta_r:cfg.delta_r ()
  in
  let _, _, fold_stop = fold_entries folded loaded.Durable.records in
  let* () =
    match fold_stop with
    | Some (what, stranded) ->
        Error
          (Printf.sprintf
             "verify: POISONED journal — fold stopped at %s with %d \
              record(s) stranded after it"
             what (List.length stranded))
    | None -> Ok ()
  in
  let* resumed, notes = load_state cfg ~dir in
  if State.applied folded < State.applied resumed then
    (* the recovered state certifies events the journal can no longer
       replay — the exact signature of acked events lost past a tear,
       the one scenario this oracle exists to flag. [load_state] already
       refuses the common cases; this is the defensive backstop. *)
    Error
      (Printf.sprintf
         "verify: LOST PREFIX — snapshot state (seq %d) is ahead of the \
          journal fold (seq %d); acknowledged events are unreachable \
          (torn=%b)"
         (State.applied resumed) (State.applied folded) loaded.Durable.torn)
  else if State.encode folded = State.encode resumed then
    Ok
      (Printf.sprintf
         "verify: ok entries=%d seq=%d state-crc=%s torn=%b%s"
         (List.length loaded.Durable.records)
         (State.applied resumed) (State.crc resumed) loaded.Durable.torn
         (String.concat ""
            (List.map (fun n -> "\n  note: " ^ n) notes)))
  else
    Error
      (Printf.sprintf
         "verify: MISMATCH fold-crc=%s resume-crc=%s (fold seq %d, resume seq \
          %d)"
         (State.crc folded) (State.crc resumed) (State.applied folded)
         (State.applied resumed))
