type req =
  | Paper_add of { paper : int; vec : float array }
  | Paper_withdraw of { paper : int }
  | Reviewer_join of { reviewer : int; vec : float array }
  | Reviewer_leave of { reviewer : int }
  | Coi_add of { paper : int; reviewer : int }
  | Bid_update of { paper : int; reviewer : int; weight : float }

type read = Query of int | Health | Stats

type request = Mutate of req | Read of read

type line = { id : int; request : request }

let verb = function
  | Paper_add _ -> "paper-add"
  | Paper_withdraw _ -> "paper-withdraw"
  | Reviewer_join _ -> "reviewer-join"
  | Reviewer_leave _ -> "reviewer-leave"
  | Coi_add _ -> "coi-add"
  | Bid_update _ -> "bid-update"

(* {1 Parsing} *)

let ( let* ) = Result.bind

(* Strict tokenizer: single spaces only. Doubled, leading or trailing
   separators mean a malformed (possibly corrupted) line, and the
   hostility contract says reject, not guess. *)
let tokens s =
  let parts = String.split_on_char ' ' s in
  if List.exists (fun p -> p = "") parts then
    Error "malformed field separators (empty field)"
  else Ok parts

let parse_nat what s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> Ok n
  | Some _ -> Error (Printf.sprintf "%s must be non-negative, got %s" what s)
  | None -> Error (Printf.sprintf "%s is not an integer: %s" what s)

let parse_weight what s =
  match float_of_string_opt s with
  | Some w when Float.is_finite w && w >= 0. -> Ok w
  | Some _ -> Error (Printf.sprintf "%s must be finite and >= 0: %s" what s)
  | None -> Error (Printf.sprintf "%s is not a number: %s" what s)

let decode_vec s =
  let parts = String.split_on_char ',' s in
  let rec go acc i = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | p :: rest ->
        let* w = parse_weight (Printf.sprintf "vector[%d]" i) p in
        go (w :: acc) (i + 1) rest
  in
  go [] 0 parts

let parse_vec ~dim s =
  (* Length-check before element parsing so an oversized vector is
     rejected in O(dim) regardless of payload size. *)
  let commas = ref 0 in
  String.iter (fun c -> if c = ',' then incr commas) s;
  if !commas + 1 <> dim then
    Error
      (Printf.sprintf "vector has %d components, instance dimension is %d"
         (!commas + 1) dim)
  else decode_vec s

let parse ~dim raw =
  let* parts = tokens raw in
  match parts with
  | [] | [ _ ] -> Error "expected: <id> <verb> [args]"
  | id :: rest -> (
      let* id = parse_nat "event id" id in
      let ok request = Ok { id; request } in
      let mut r = ok (Mutate r) in
      match rest with
      | [ "paper-add"; p; v ] ->
          let* paper = parse_nat "paper id" p in
          let* vec = parse_vec ~dim v in
          mut (Paper_add { paper; vec })
      | [ "paper-withdraw"; p ] ->
          let* paper = parse_nat "paper id" p in
          mut (Paper_withdraw { paper })
      | [ "reviewer-join"; r; v ] ->
          let* reviewer = parse_nat "reviewer id" r in
          let* vec = parse_vec ~dim v in
          mut (Reviewer_join { reviewer; vec })
      | [ "reviewer-leave"; r ] ->
          let* reviewer = parse_nat "reviewer id" r in
          mut (Reviewer_leave { reviewer })
      | [ "coi-add"; p; r ] ->
          let* paper = parse_nat "paper id" p in
          let* reviewer = parse_nat "reviewer id" r in
          mut (Coi_add { paper; reviewer })
      | [ "bid-update"; p; r; w ] ->
          let* paper = parse_nat "paper id" p in
          let* reviewer = parse_nat "reviewer id" r in
          let* weight = parse_weight "bid weight" w in
          mut (Bid_update { paper; reviewer; weight })
      | [ "query"; p ] ->
          let* paper = parse_nat "paper id" p in
          ok (Read (Query paper))
      | [ "health" ] -> ok (Read Health)
      | [ "stats" ] -> ok (Read Stats)
      | v :: _ when int_of_string_opt v = None && String.length v <= 32 ->
          Error (Printf.sprintf "unknown verb %S" v)
      | _ -> Error "wrong number of arguments")

let request_id raw =
  match String.index_opt raw ' ' with
  | Some i when i > 0 -> (
      let tok = String.sub raw 0 i in
      match int_of_string_opt tok with Some n when n >= 0 -> tok | _ -> "-")
  | _ -> "-"

(* {1 Journal entries} *)

type op =
  | Set_group of { paper : int; group : int list }
  | Pend of int
  | Unpend of int

type entry =
  | Client of { seq : int; id : int; req : req; ops : op list }
  | Improve of { seq : int; ops : op list }

let entry_seq = function Client { seq; _ } | Improve { seq; _ } -> seq
let entry_ops = function Client { ops; _ } | Improve { ops; _ } -> ops

let encode_vec v =
  String.concat "," (List.map (Printf.sprintf "%h") (Array.to_list v))

let encode_ids = function
  | [] -> "-"
  | ids -> String.concat "," (List.map string_of_int ids)

let decode_ids what s =
  if s = "-" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest ->
          let* n = parse_nat what p in
          go (n :: acc) rest
    in
    go [] (String.split_on_char ',' s)

let encode_req = function
  | Paper_add { paper; vec } ->
      Printf.sprintf "paper-add %d %s" paper (encode_vec vec)
  | Paper_withdraw { paper } -> Printf.sprintf "paper-withdraw %d" paper
  | Reviewer_join { reviewer; vec } ->
      Printf.sprintf "reviewer-join %d %s" reviewer (encode_vec vec)
  | Reviewer_leave { reviewer } -> Printf.sprintf "reviewer-leave %d" reviewer
  | Coi_add { paper; reviewer } ->
      Printf.sprintf "coi-add %d %d" paper reviewer
  | Bid_update { paper; reviewer; weight } ->
      Printf.sprintf "bid-update %d %d %h" paper reviewer weight

let encode_op = function
  | Set_group { paper; group } ->
      Printf.sprintf "set %d %s" paper (encode_ids group)
  | Pend p -> Printf.sprintf "pend %d" p
  | Unpend p -> Printf.sprintf "unpend %d" p

let encode_ops ops = String.concat ";" (List.map encode_op ops)

let encode_entry = function
  | Client { seq; id; req; ops } ->
      Printf.sprintf "s%d e%d %s => %s" seq id (encode_req req)
        (encode_ops ops)
  | Improve { seq; ops } ->
      Printf.sprintf "s%d improve => %s" seq (encode_ops ops)

let decode_op s =
  match tokens s with
  | Error _ as e -> e
  | Ok [ "set"; p; ids ] ->
      let* paper = parse_nat "op paper id" p in
      let* group = decode_ids "op reviewer id" ids in
      Ok (Set_group { paper; group })
  | Ok [ "pend"; p ] ->
      let* paper = parse_nat "op paper id" p in
      Ok (Pend paper)
  | Ok [ "unpend"; p ] ->
      let* paper = parse_nat "op paper id" p in
      Ok (Unpend paper)
  | Ok _ -> Error (Printf.sprintf "unknown op %S" s)

let decode_ops s =
  if s = "" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest ->
          let* op = decode_op p in
          go (op :: acc) rest
    in
    go [] (String.split_on_char ';' s)

let decode_req s =
  (* Entry payloads passed the journal checksum, so [dim] consistency
     is the state layer's concern: accept any well-formed vector. *)
  match tokens s with
  | Error _ as e -> e
  | Ok parts -> (
      match parts with
      | [ "paper-add"; p; v ] ->
          let* paper = parse_nat "paper id" p in
          let* vec = decode_vec v in
          Ok (Paper_add { paper; vec })
      | [ "paper-withdraw"; p ] ->
          let* paper = parse_nat "paper id" p in
          Ok (Paper_withdraw { paper })
      | [ "reviewer-join"; r; v ] ->
          let* reviewer = parse_nat "reviewer id" r in
          let* vec = decode_vec v in
          Ok (Reviewer_join { reviewer; vec })
      | [ "reviewer-leave"; r ] ->
          let* reviewer = parse_nat "reviewer id" r in
          Ok (Reviewer_leave { reviewer })
      | [ "coi-add"; p; r ] ->
          let* paper = parse_nat "paper id" p in
          let* reviewer = parse_nat "reviewer id" r in
          Ok (Coi_add { paper; reviewer })
      | [ "bid-update"; p; r; w ] ->
          let* paper = parse_nat "paper id" p in
          let* reviewer = parse_nat "reviewer id" r in
          let* weight = parse_weight "bid weight" w in
          Ok (Bid_update { paper; reviewer; weight })
      | _ -> Error (Printf.sprintf "unparseable journal request %S" s))

let decode_entry payload =
  let fail msg = Error (Printf.sprintf "journal entry: %s" msg) in
  match String.index_opt payload ' ' with
  | None -> fail "missing sequence field"
  | Some sp -> (
      let head = String.sub payload 0 sp in
      let rest = String.sub payload (sp + 1) (String.length payload - sp - 1) in
      if String.length head < 2 || head.[0] <> 's' then
        fail "expected s<seq> prefix"
      else
        match
          parse_nat "sequence" (String.sub head 1 (String.length head - 1))
        with
        | Error m -> fail m
        | Ok seq -> (
            (* split "<body> => <ops>" on the first " => " *)
            let marker = " => " in
            let mlen = String.length marker in
            let rec find i =
              if i + mlen > String.length rest then None
              else if String.sub rest i mlen = marker then Some i
              else find (i + 1)
            in
            match find 0 with
            | None -> fail "missing => ops separator"
            | Some i -> (
                let body = String.sub rest 0 i in
                let ops_s =
                  String.sub rest (i + mlen) (String.length rest - i - mlen)
                in
                match decode_ops ops_s with
                | Error m -> fail m
                | Ok ops ->
                    if body = "improve" then Ok (Improve { seq; ops })
                    else
                      match String.index_opt body ' ' with
                      | None -> fail "missing event id"
                      | Some j ->
                          let ehead = String.sub body 0 j in
                          let req_s =
                            String.sub body (j + 1) (String.length body - j - 1)
                          in
                          if String.length ehead < 2 || ehead.[0] <> 'e' then
                            fail "expected e<id> event field"
                          else
                            let* id =
                              Result.map_error
                                (fun m -> "journal entry: " ^ m)
                                (parse_nat "event id"
                                   (String.sub ehead 1 (String.length ehead - 1)))
                            in
                            let* req =
                              Result.map_error
                                (fun m -> "journal entry: " ^ m)
                                (decode_req req_s)
                            in
                            Ok (Client { seq; id; req; ops }))))
