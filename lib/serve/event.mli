(** The `wgrap serve` line protocol and its journal-entry codec.

    {2 Request grammar}

    One event per line, space-separated, no empty fields:

    {v
    <id> paper-add <paper> <w0,w1,...,wD-1>
    <id> paper-withdraw <paper>
    <id> reviewer-join <reviewer> <w0,...,wD-1>
    <id> reviewer-leave <reviewer>
    <id> coi-add <paper> <reviewer>
    <id> bid-update <paper> <reviewer> <weight>
    <id> query <paper>
    <id> health
    <id> stats
    v}

    [<id>] is a client-chosen non-negative integer; mutating events must
    carry strictly increasing ids (the duplicate/out-of-order guard).
    Weights are non-negative finite decimals (hex float literals are
    also accepted). Queries ([query]/[health]/[stats]) are reads: they
    are answered from the resident state and never journaled.

    {2 Journal entries}

    The WAL records each accepted mutation {e together with the ops the
    re-solve decided} ("log the decision, not the computation"): a
    per-event re-solve runs under a wall-clock deadline, so replaying
    the computation after a crash could diverge — replaying the
    recorded ops cannot. Idle-time improvement passes journal their
    deltas the same way, as [Improve] entries. Replay is therefore a
    pure, deterministic fold of {!apply}ing entries in sequence. *)

type req =
  | Paper_add of { paper : int; vec : float array }
  | Paper_withdraw of { paper : int }
  | Reviewer_join of { reviewer : int; vec : float array }
  | Reviewer_leave of { reviewer : int }
  | Coi_add of { paper : int; reviewer : int }
  | Bid_update of { paper : int; reviewer : int; weight : float }

type read = Query of int | Health | Stats

type request = Mutate of req | Read of read

type line = { id : int; request : request }

val parse : dim:int -> string -> (line, string) result
(** Parse one request line. [dim] bounds and checks vector lengths —
    an oversized or short vector is a protocol error, reported with a
    human-readable reason (the caller prefixes the line number). Never
    raises. *)

val request_id : string -> string
(** Best-effort extraction of the leading event id of a raw line, for
    error/shed responses to lines that failed parsing ("-" when there
    is none). *)

val verb : req -> string
(** The wire verb, e.g. ["paper-add"] — for logs and quarantine rows. *)

(** {2 Outcome ops and journal entries} *)

type op =
  | Set_group of { paper : int; group : int list }
      (** replace the paper's reviewer group (sorted ids) *)
  | Pend of int  (** mark a paper as needing improvement attention *)
  | Unpend of int  (** clear the mark *)

type entry =
  | Client of { seq : int; id : int; req : req; ops : op list }
      (** an accepted client mutation and the ops its re-solve chose *)
  | Improve of { seq : int; ops : op list }
      (** an idle-time improvement delta *)

val entry_seq : entry -> int
val entry_ops : entry -> op list

val encode_entry : entry -> string
(** Canonical single-line journal payload. Floats are written as [%h]
    hex literals so a replayed fold reproduces the resident state bit
    for bit. Newline- and tab-free. *)

val decode_entry : string -> (entry, string) result
(** Inverse of {!encode_entry}. *)

val encode_vec : float array -> string
(** The [%h] comma-separated vector form shared with the state
    snapshot codec. *)

val decode_vec : string -> (float array, string) result
