module TV = Wgrap.Topic_vector
module Scoring = Wgrap.Scoring
module Jra = Wgrap.Jra
module Solver = Wgrap.Solver
module Ctx = Wgrap.Ctx
module Amend = Wgrap.Amend
module Instance = Wgrap.Instance
module Assignment = Wgrap.Assignment
module Gain_matrix = Wgrap.Gain_matrix
module Objective = Wgrap.Objective
module Taxonomy = Wgrap.Taxonomy
module Summary = Wgrap.Summary
module Timer = Wgrap_util.Timer
module Crc32 = Wgrap_persist.Crc32

(* The base coverage kernel. The resident objective (below) decides how
   reviewer expertise is viewed before this kernel scores it; modular
   or rank-dependent objective terms do not reshape per-event planning
   (each event re-solves one paper), they surface in [summary]. *)
let scoring = Scoring.Weighted_coverage

(* The resident dense view: the [Instance.t] (with its compiled supports
   and candidate index) and the shared [Gain_matrix.t] survive across
   events, so consecutive Amend repairs reuse warm gain rows instead of
   rebuilding the whole mapping per event. The view is keyed by the
   roster: any membership change drops it; a late conflict rebinds it in
   place (same shape, rows survive). Planner-only — nothing here is in
   {!encode}, so cache state can never leak into replay determinism. *)
type dense_view = {
  d_inst : Instance.t;  (** raw vectors — what {!summary} reports over *)
  d_view : Instance.t;
      (** the objective's scoring view ({!Objective.view}); physically
          [d_inst] for non-transforming specs. Amend repairs and the
          gain matrix work over this one. *)
  d_pids : int array;
  d_rids : int array;
  d_pidx : (int, int) Hashtbl.t;
  d_ridx : (int, int) Hashtbl.t;
  d_gm : Gain_matrix.t;
}

type t = {
  dim : int;
  delta_p : int;
  delta_r : int;
  papers : (int, float array) Hashtbl.t;
  reviewers : (int, float array) Hashtbl.t;
  coi : (int * int, unit) Hashtbl.t;  (** (paper, reviewer) *)
  bids : (int * int, float) Hashtbl.t;  (** (paper, reviewer) -> weight *)
  groups : (int, int list) Hashtbl.t;  (** ascending; total over papers *)
  workload : (int, int) Hashtbl.t;  (** missing = 0 *)
  pending : (int, unit) Hashtbl.t;
  mutable last_client : int;
  mutable applied : int;
  mutable objective : Objective.spec;
      (** planner-only runtime config, like the event budget: it shapes
          the groups the planners propose (and what {!summary} values),
          but committed ops are journaled as data, so replay is
          objective-independent and the snapshot codec never records
          it *)
  mutable dense : dense_view option;
}

let validate_objective ~dim = function
  | Objective.Taxonomy { tree; _ } when Taxonomy.dim tree <> dim ->
      Error
        (Printf.sprintf
           "taxonomy is over %d topics but the instance dimension is %d"
           (Taxonomy.dim tree) dim)
  | _ -> Ok ()

let create ?(objective = Objective.coverage) ~dim ~delta_p ~delta_r () =
  if dim < 1 then Error "dim must be >= 1"
  else if delta_p < 1 then Error "delta-p must be >= 1"
  else if delta_r < 1 then Error "delta-r must be >= 1"
  else
    match validate_objective ~dim objective with
    | Error m -> Error m
    | Ok () ->
    Ok
      {
        dim;
        delta_p;
        delta_r;
        objective;
        papers = Hashtbl.create 64;
        reviewers = Hashtbl.create 64;
        coi = Hashtbl.create 64;
        bids = Hashtbl.create 64;
        groups = Hashtbl.create 64;
        workload = Hashtbl.create 64;
        pending = Hashtbl.create 16;
        last_client = -1;
        applied = 0;
        dense = None;
      }

let dim t = t.dim
let delta_p t = t.delta_p
let delta_r t = t.delta_r
let objective t = t.objective

let set_objective t spec =
  match validate_objective ~dim:t.dim spec with
  | Error m -> Error m
  | Ok () ->
      t.objective <- spec;
      (* the dense view's gain matrix was built over the old view *)
      t.dense <- None;
      Ok ()

(* How the resident objective sees a reviewer's expertise: identity for
   every backend except the taxonomy transform, which bleeds expertise
   along the topic tree exactly as Objective.bind's view does. *)
let expertise t vec =
  match t.objective with
  | Objective.Taxonomy { tree; decay } -> Taxonomy.smooth tree ~decay vec
  | _ -> vec
let applied t = t.applied
let last_client t = t.last_client
let n_papers t = Hashtbl.length t.papers
let n_reviewers t = Hashtbl.length t.reviewers

let sorted_keys tbl = List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) tbl [])
let pending t = sorted_keys t.pending
let group t p = Hashtbl.find_opt t.groups p
let workload_of t r = Option.value ~default:0 (Hashtbl.find_opt t.workload r)

type answer = { group : int list; score : float; short : bool; is_pending : bool }

let query t p =
  match (Hashtbl.find_opt t.papers p, Hashtbl.find_opt t.groups p) with
  | Some pvec, Some g ->
      let score =
        match g with
        | [] -> 0.
        | _ ->
            Scoring.group_score scoring
              (List.map (fun r -> expertise t (Hashtbl.find t.reviewers r)) g)
              pvec
      in
      Some
        {
          group = g;
          score;
          short = List.length g < t.delta_p;
          is_pending = Hashtbl.mem t.pending p;
        }
  | _ -> None

(* {1 Admission-time validation} *)

let check_vec t what v =
  if Array.length v <> t.dim then
    Error
      (Printf.sprintf "%s vector has %d components, instance dimension is %d"
         what (Array.length v) t.dim)
  else
    match TV.validate v with
    | Error m -> Error (Printf.sprintf "%s vector: %s" what m)
    | Ok () -> Ok ()

let validate_req t (req : Event.req) =
  let known_paper p =
    if Hashtbl.mem t.papers p then Ok ()
    else Error (Printf.sprintf "unknown paper %d" p)
  in
  let known_reviewer r =
    if Hashtbl.mem t.reviewers r then Ok ()
    else Error (Printf.sprintf "unknown reviewer %d" r)
  in
  let ( let* ) = Result.bind in
  match req with
  | Event.Paper_add { paper; vec } ->
      if Hashtbl.mem t.papers paper then
        Error (Printf.sprintf "paper %d already exists" paper)
      else
        let* () = check_vec t "paper" vec in
        if TV.mass vec <= 0. then Error "paper vector has zero mass"
        else Ok ()
  | Event.Paper_withdraw { paper } -> known_paper paper
  | Event.Reviewer_join { reviewer; vec } ->
      if Hashtbl.mem t.reviewers reviewer then
        Error (Printf.sprintf "reviewer %d already exists" reviewer)
      else check_vec t "reviewer" vec
  | Event.Reviewer_leave { reviewer } -> known_reviewer reviewer
  | Event.Coi_add { paper; reviewer } ->
      let* () = known_paper paper in
      let* () = known_reviewer reviewer in
      if Hashtbl.mem t.coi (paper, reviewer) then
        Error (Printf.sprintf "conflict (%d, %d) already registered" paper reviewer)
      else Ok ()
  | Event.Bid_update { paper; reviewer; weight = _ } ->
      let* () = known_paper paper in
      let* () = known_reviewer reviewer in
      if Hashtbl.mem t.coi (paper, reviewer) then
        Error
          (Printf.sprintf "pair (%d, %d) is a conflict of interest" paper
             reviewer)
      else Ok ()

(* {1 Planning} *)

(* Bid weights scale the reviewer's expertise vector for that one paper,
   biasing re-solves toward willing reviewers. [override] carries a
   not-yet-committed weight (planning runs before commit). *)
let weighted ?override t ~paper ~reviewer vec =
  let w =
    match override with
    | Some (r, w) when r = reviewer -> Some w
    | _ -> Hashtbl.find_opt t.bids (paper, reviewer)
  in
  match w with
  | None -> vec
  | Some w when Float.equal w 1. -> vec
  | Some w -> Array.map (fun x -> x *. w) vec

(* Selectable reviewers for [paper]: spare workload (adjusted by [adj],
   the plan-local capacity deltas), no conflict, not banned, not already
   a member. Ascending id order for determinism. *)
let candidates ?(adj = fun _ -> 0) ?(banned = []) ?(members = []) t ~paper =
  Hashtbl.fold
    (fun r vec acc ->
      if List.mem r banned || List.mem r members then acc
      else if Hashtbl.mem t.coi (paper, r) then acc
      else
        let spare = t.delta_r - workload_of t r + adj r in
        if spare > 0 then (r, expertise t vec) :: acc else acc)
    t.reviewers []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let weighted_group_score ?override t ~paper group =
  match group with
  | [] -> 0.
  | _ ->
      let pvec = Hashtbl.find t.papers paper in
      Scoring.group_score scoring
        (List.map
           (fun r ->
             weighted ?override t ~paper ~reviewer:r
               (expertise t (Hashtbl.find t.reviewers r)))
           group)
        pvec

(* Greedy hole-fill: extend [have] toward delta_p by descending marginal
   gain (ties to the lower reviewer id), polling the deadline between
   picks. The degraded backstop of every planning path. *)
let greedy_fill ?deadline ?override t ~paper ~pvec ~have cands =
  let gvec = ref (Scoring.empty_group ~dim:t.dim) in
  List.iter
    (fun r ->
      let v =
        weighted ?override t ~paper ~reviewer:r
          (expertise t (Hashtbl.find t.reviewers r))
      in
      TV.extend_max_into ~dst:!gvec v)
    have;
  let picked = ref (List.rev have) in
  let n = ref (List.length have) in
  let remaining =
    ref
      (List.map
         (fun (r, v) -> (r, weighted ?override t ~paper ~reviewer:r v))
         cands)
  in
  let reasons = ref [] in
  (try
     while !n < t.delta_p && !remaining <> [] do
       Timer.check_opt deadline;
       let best =
         List.fold_left
           (fun acc (r, v) ->
             let g = Scoring.gain scoring ~group:!gvec v pvec in
             match acc with
             | Some (_, _, bg) when bg >= g -> acc
             | _ -> Some (r, v, g))
           None !remaining
       in
       match best with
       | None -> remaining := []
       | Some (r, v, _) ->
           picked := r :: !picked;
           incr n;
           gvec := TV.extend_max !gvec v;
           remaining := List.filter (fun (r', _) -> r' <> r) !remaining
     done
   with Timer.Expired ->
     reasons := [ Solver.Timeout { link = "serve-greedy" } ]);
  (List.sort compare !picked, !reasons)

(* Full single-paper re-solve through the anytime JRA chain when the
   candidate pool can fill a whole group; greedy partial fill when it
   cannot. *)
let solve_group ?deadline ?override t ~paper ~pvec cands =
  let scaled =
    List.map (fun (r, v) -> (r, weighted ?override t ~paper ~reviewer:r v)) cands
  in
  let n = List.length scaled in
  if n = 0 then ([], [])
  else if n >= t.delta_p then begin
    let rids = Array.of_list (List.map fst scaled) in
    let pool = Array.of_list (List.map snd scaled) in
    let problem = Jra.make ~scoring ~paper:pvec ~pool ~group_size:t.delta_p () in
    let ctx = Ctx.make ?deadline () in
    let of_sol (sol : Jra.solution) =
      List.sort compare (List.map (fun i -> rids.(i)) sol.group)
    in
    match Solver.jra ~ctx problem with
    | Solver.Complete sol -> (of_sol sol, [])
    | Solver.Degraded (sol, reasons) -> (of_sol sol, reasons)
    | Solver.Infeasible msg ->
        (* cannot happen with an exclusion-free pool >= group_size, but
           the chain's contract allows it; fall back rather than trust *)
        let g, rs = greedy_fill ?deadline ?override t ~paper ~pvec ~have:[] cands in
        (g, Solver.Fault { link = "serve-jra"; error = msg } :: rs)
  end
  else greedy_fill ?deadline ?override t ~paper ~pvec ~have:[] cands

type planned = { ops : Event.op list; reasons : Solver.reason list }

(* {2 The Amend fast path}

   When every group is full and the dense instance is constructible, the
   state maps onto an [Instance.t]/[Assignment.t] pair and late changes
   become {!Amend} minimal repairs. Bid weights are not represented
   there (Amend maximizes unweighted coverage); that is acceptable for
   repair ops — bids are soft preferences, feasibility is not. *)

let build_dense_view t =
  let pids = Array.of_list (sorted_keys t.papers) in
  let rids = Array.of_list (sorted_keys t.reviewers) in
  if Array.length pids = 0 || Array.length rids = 0 then None
  else begin
    let pidx = Hashtbl.create (Array.length pids) in
    let ridx = Hashtbl.create (Array.length rids) in
    Array.iteri (fun i p -> Hashtbl.replace pidx p i) pids;
    Array.iteri (fun i r -> Hashtbl.replace ridx r i) rids;
    let papers = Array.map (Hashtbl.find t.papers) pids in
    let reviewers = Array.map (Hashtbl.find t.reviewers) rids in
    let coi =
      Hashtbl.fold
        (fun (p, r) () acc -> (Hashtbl.find pidx p, Hashtbl.find ridx r) :: acc)
        t.coi []
    in
    match
      Instance.create ~scoring ~coi ~papers ~reviewers ~delta_p:t.delta_p
        ~delta_r:t.delta_r ()
    with
    | Error _ -> None
    | Ok inst -> (
        match Objective.bind t.objective inst with
        | exception Invalid_argument _ ->
            (* spec parameters shaped to some other instance (a Blend
               matrix); planning falls back to the manual paths *)
            None
        | obj ->
            let view = Objective.view obj in
            Some
              {
                d_inst = inst;
                d_view = view;
                d_pids = pids;
                d_rids = rids;
                d_pidx = pidx;
                d_ridx = ridx;
                d_gm = Gain_matrix.create view;
              })
  end

(* The assignment itself is rebuilt from [t.groups] on every call (it is
   O(n_p) and must reflect committed state exactly); the instance and
   the gain matrix come from the resident view. The per-paper
   [set_group] sync below bumps a row version only where the group
   vector actually moved, so rows of papers untouched since the last
   event stay warm — this is the incremental maintenance PR 6 deferred. *)
let to_dense t =
  let view =
    match t.dense with
    | Some d -> Some d
    | None ->
        let d = build_dense_view t in
        t.dense <- d;
        d
  in
  match view with
  | None -> None
  | Some d ->
      let a = Assignment.empty ~n_papers:(Array.length d.d_pids) in
      Array.iteri
        (fun i p ->
          let g =
            List.map (Hashtbl.find d.d_ridx) (Hashtbl.find t.groups p)
          in
          a.Assignment.groups.(i) <- g;
          Gain_matrix.set_group d.d_gm ~paper:i g)
        d.d_pids;
      Some (d.d_view, d.d_pids, d.d_rids, a, d.d_gm)

(* The chair-facing report over the committed groups, under the
   resident objective — the payload of the service's stats read. [None]
   until the roster maps onto a dense instance. *)
let summary t =
  match to_dense t with
  | None -> None
  | Some (_view, _pids, _rids, a, _gm) -> (
      match t.dense with
      | None -> None
      | Some d -> (
          match Summary.compute ~objective:t.objective d.d_inst a with
          | s -> Some s
          | exception Invalid_argument _ -> None))

let amendable t = Hashtbl.length t.pending = 0

let ops_of_change rids pids (change : Amend.change) =
  List.map
    (fun pi ->
      let group =
        List.sort compare
          (List.map (fun ri -> rids.(ri)) (Assignment.group change.assignment pi))
      in
      Event.Set_group { paper = pids.(pi); group })
    change.touched_papers

let ridx_of rids r =
  let n = Array.length rids in
  let rec go i = if i >= n then None else if rids.(i) = r then Some i else go (i + 1) in
  go 0

(* {2 Per-event planners} *)

(* Manual repair for a reviewer leaving (or being conflicted off a
   paper): keep the rest of each affected group and greedy-fill the
   hole, threading capacity deltas across papers via [adj]. *)
let refill_holes ?deadline t ~banned ~affected =
  let adj = Hashtbl.create 8 in
  let adj_of r = Option.value ~default:0 (Hashtbl.find_opt adj r) in
  let consume r = Hashtbl.replace adj r (adj_of r - 1) in
  let release r = Hashtbl.replace adj r (adj_of r + 1) in
  let ops, reasons =
    List.fold_left
      (fun (ops, reasons) paper ->
        let pvec = Hashtbl.find t.papers paper in
        let old = Hashtbl.find t.groups paper in
        let have = List.filter (fun r -> not (List.mem r banned)) old in
        List.iter (fun r -> if List.mem r banned then release r) old;
        let cands = candidates ~adj:adj_of ~banned ~members:have t ~paper in
        let g, rs = greedy_fill ?deadline t ~paper ~pvec ~have cands in
        List.iter (fun r -> if not (List.mem r old) then consume r) g;
        let ops = ops @ [ Event.Set_group { paper; group = g } ] in
        let ops =
          if List.length g < t.delta_p then ops @ [ Event.Pend paper ] else ops
        in
        (ops, reasons @ rs))
      ([], []) affected
  in
  { ops; reasons }

let affected_papers t r =
  List.sort compare
    (Hashtbl.fold
       (fun p g acc -> if List.mem r g then p :: acc else acc)
       t.groups [])

let plan_reviewer_leave ?deadline t ~reviewer =
  let affected = affected_papers t reviewer in
  if affected = [] then { ops = []; reasons = [] }
  else
    let manual extra_reasons =
      let planned = refill_holes ?deadline t ~banned:[ reviewer ] ~affected in
      { planned with reasons = extra_reasons @ planned.reasons }
    in
    if not (amendable t) then manual []
    else
      match to_dense t with
      | None -> manual []
      | Some (inst, pids, rids, a, gm) -> (
          match ridx_of rids reviewer with
          | None -> manual []
          | Some ri -> (
              match Amend.withdraw_reviewer ~gains:gm inst a ~reviewer:ri with
              | Ok change -> { ops = ops_of_change rids pids change; reasons = [] }
              | Error e ->
                  manual [ Solver.Fault { link = "amend-withdraw"; error = e } ]))

let plan_coi_add ?deadline t ~paper ~reviewer =
  let g = Hashtbl.find t.groups paper in
  if not (List.mem reviewer g) then { ops = []; reasons = [] }
  else
    let manual extra_reasons =
      (* the conflicted pair is not in [t.coi] yet; ban the reviewer
         explicitly for this paper's refill *)
      let have = List.filter (fun r -> r <> reviewer) g in
      let pvec = Hashtbl.find t.papers paper in
      let adj r = if r = reviewer then 1 else 0 in
      let cands = candidates ~adj ~banned:[ reviewer ] ~members:have t ~paper in
      let group, rs = greedy_fill ?deadline t ~paper ~pvec ~have cands in
      let ops = [ Event.Set_group { paper; group } ] in
      let ops =
        if List.length group < t.delta_p then ops @ [ Event.Pend paper ] else ops
      in
      { ops; reasons = extra_reasons @ rs }
    in
    if not (amendable t) then manual []
    else
      match to_dense t with
      | None -> manual []
      | Some (inst, pids, rids, a, gm) -> (
          let pi = ref (-1) in
          Array.iteri (fun i p -> if p = paper then pi := i) pids;
          match ridx_of rids reviewer with
          | None -> manual []
          | Some ri -> (
              match Amend.add_coi ~gains:gm inst a [ (!pi, ri) ] with
              | Ok (_inst', change) ->
                  { ops = ops_of_change rids pids change; reasons = [] }
              | Error e ->
                  manual [ Solver.Fault { link = "amend-coi"; error = e } ]))

let plan ?deadline t (req : Event.req) =
  match req with
  | Event.Paper_add { paper; vec } ->
      let cands = candidates t ~paper in
      let group, reasons = solve_group ?deadline t ~paper ~pvec:vec cands in
      let ops = [ Event.Set_group { paper; group } ] in
      let ops =
        if List.length group < t.delta_p || reasons <> [] then
          ops @ [ Event.Pend paper ]
        else ops
      in
      { ops; reasons }
  | Event.Paper_withdraw _ | Event.Reviewer_join _ ->
      (* pure membership: withdrawing frees capacity and joining adds
         it; both are picked up by the idle improvement pass, which the
         server re-arms after every mutation *)
      { ops = []; reasons = [] }
  | Event.Reviewer_leave { reviewer } -> plan_reviewer_leave ?deadline t ~reviewer
  | Event.Coi_add { paper; reviewer } -> plan_coi_add ?deadline t ~paper ~reviewer
  | Event.Bid_update { paper; reviewer; weight } ->
      let override = (reviewer, weight) in
      let old = Hashtbl.find t.groups paper in
      let pvec = Hashtbl.find t.papers paper in
      let adj r = if List.mem r old then 1 else 0 in
      let cands = candidates ~adj t ~paper in
      let group, reasons = solve_group ?deadline ~override t ~paper ~pvec cands in
      let old_score = weighted_group_score ~override t ~paper old in
      let new_score = weighted_group_score ~override t ~paper group in
      (* keep the announced group unless the re-solve actually wins —
         minimal disruption is the service's promise *)
      let group, reasons =
        if List.length group > List.length old || new_score > old_score +. 1e-12
        then (group, reasons)
        else (old, reasons)
      in
      let ops = [ Event.Set_group { paper; group } ] in
      let short = List.length group < t.delta_p in
      let ops =
        if short || reasons <> [] then ops @ [ Event.Pend paper ]
        else if Hashtbl.mem t.pending paper then ops @ [ Event.Unpend paper ]
        else ops
      in
      { ops; reasons }

type improvement = Improved of Event.op list | Exhausted of int | Idle

let plan_improve ?deadline ~skip t =
  match List.filter (fun p -> not (skip p)) (pending t) with
  | [] -> Idle
  | paper :: _ -> (
      let pvec = Hashtbl.find t.papers paper in
      let old = Hashtbl.find t.groups paper in
      if List.length old < t.delta_p then begin
        (* short group: fill the hole from current spare capacity *)
        let cands = candidates ~members:old t ~paper in
        let g, _ = greedy_fill ?deadline t ~paper ~pvec ~have:old cands in
        if List.length g = List.length old then Exhausted paper
        else
          let ops = [ Event.Set_group { paper; group = g } ] in
          let ops =
            if List.length g >= t.delta_p then ops @ [ Event.Unpend paper ]
            else ops
          in
          Improved ops
      end
      else begin
        (* full but degraded: re-solve from scratch and keep the winner *)
        let adj r = if List.mem r old then 1 else 0 in
        let cands = candidates ~adj t ~paper in
        let g, reasons = solve_group ?deadline t ~paper ~pvec cands in
        let old_score = weighted_group_score t ~paper old in
        let new_score = weighted_group_score t ~paper g in
        let improved =
          List.length g >= List.length old && new_score > old_score +. 1e-12
        in
        match (improved, reasons) with
        | true, [] ->
            Improved [ Event.Set_group { paper; group = g }; Event.Unpend paper ]
        | true, _ -> Improved [ Event.Set_group { paper; group = g } ]
        | false, [] ->
            (* a complete re-solve could not beat the incumbent: the
               paper has reached its best and stops pending *)
            Improved [ Event.Unpend paper ]
        | false, _ -> Exhausted paper
      end)

(* {1 Commit} *)

exception Commit_error of string

let failc fmt = Printf.ksprintf (fun m -> raise (Commit_error m)) fmt

let purge_pairs tbl which id =
  let doomed =
    Hashtbl.fold
      (fun ((p, r) as k) _ acc ->
        if (which = `Paper && p = id) || (which = `Reviewer && r = id) then
          k :: acc
        else acc)
      tbl []
  in
  List.iter (Hashtbl.remove tbl) doomed

(* Keep the resident dense view in step with a membership change: any
   roster mutation changes the index mapping and drops the view; a late
   conflict keeps it — the instance is rebuilt with the extra COI and
   the gain matrix rebound in place, which preserves every warm row
   (gain rows never read the COI mask). *)
let sync_dense t (req : Event.req) =
  match req with
  | Event.Paper_add _ | Event.Paper_withdraw _ | Event.Reviewer_join _
  | Event.Reviewer_leave _ ->
      t.dense <- None
  | Event.Bid_update _ ->
      (* bids are not represented in the dense view *)
      ()
  | Event.Coi_add { paper; reviewer } -> (
      match t.dense with
      | None -> ()
      | Some d -> (
          match
            (Hashtbl.find_opt d.d_pidx paper, Hashtbl.find_opt d.d_ridx reviewer)
          with
          | Some pi, Some ri -> (
              match Instance.add_coi d.d_inst [ (pi, ri) ] with
              | Ok inst' -> (
                  (* keep the scoring view in step: same COI extension
                     over the (possibly transformed) view instance *)
                  let view' =
                    if d.d_view == d.d_inst then Ok inst'
                    else Instance.add_coi d.d_view [ (pi, ri) ]
                  in
                  match view' with
                  | Ok view' ->
                      Gain_matrix.rebind d.d_gm view';
                      t.dense <- Some { d with d_inst = inst'; d_view = view' }
                  | Error _ -> t.dense <- None)
              | Error _ -> t.dense <- None)
          | _ -> t.dense <- None))

let apply_membership t (req : Event.req) =
  sync_dense t req;
  match req with
  | Event.Paper_add { paper; vec } ->
      if Hashtbl.mem t.papers paper then failc "duplicate paper %d" paper;
      Hashtbl.replace t.papers paper vec;
      Hashtbl.replace t.groups paper []
  | Event.Paper_withdraw { paper } ->
      (match Hashtbl.find_opt t.groups paper with
      | None -> failc "withdraw of unknown paper %d" paper
      | Some g ->
          List.iter
            (fun r -> Hashtbl.replace t.workload r (workload_of t r - 1))
            g);
      Hashtbl.remove t.papers paper;
      Hashtbl.remove t.groups paper;
      Hashtbl.remove t.pending paper;
      purge_pairs t.bids `Paper paper;
      purge_pairs t.coi `Paper paper
  | Event.Reviewer_join { reviewer; vec } ->
      if Hashtbl.mem t.reviewers reviewer then
        failc "duplicate reviewer %d" reviewer;
      Hashtbl.replace t.reviewers reviewer vec
  | Event.Reviewer_leave { reviewer } ->
      if not (Hashtbl.mem t.reviewers reviewer) then
        failc "leave of unknown reviewer %d" reviewer;
      Hashtbl.remove t.reviewers reviewer;
      Hashtbl.remove t.workload reviewer;
      purge_pairs t.bids `Reviewer reviewer;
      purge_pairs t.coi `Reviewer reviewer;
      (* strip the departed reviewer everywhere; the entry's ops then
         install the refilled groups on the affected papers *)
      Hashtbl.iter
        (fun p g ->
          if List.mem reviewer g then
            Hashtbl.replace t.groups p (List.filter (fun r -> r <> reviewer) g))
        (Hashtbl.copy t.groups)
  | Event.Coi_add { paper; reviewer } ->
      Hashtbl.replace t.coi (paper, reviewer) ()
  | Event.Bid_update { paper; reviewer; weight } ->
      Hashtbl.replace t.bids (paper, reviewer) weight

(* Ops re-check the hard constraints: a planner bug or corrupt journal
   must fail the commit, never break feasibility silently. *)
let apply_op t (op : Event.op) =
  match op with
  | Event.Set_group { paper; group } ->
      if not (Hashtbl.mem t.papers paper) then
        failc "set-group on unknown paper %d" paper;
      let group = List.sort compare group in
      let rec dups = function
        | a :: (b :: _ as rest) -> if a = b then true else dups rest
        | _ -> false
      in
      if dups group then failc "set-group with duplicate reviewer (paper %d)" paper;
      if List.length group > t.delta_p then
        failc "set-group above delta-p on paper %d" paper;
      List.iter
        (fun r ->
          if not (Hashtbl.mem t.reviewers r) then
            failc "set-group with unknown reviewer %d (paper %d)" r paper;
          if Hashtbl.mem t.coi (paper, r) then
            failc "set-group violates conflict (%d, %d)" paper r)
        group;
      let old = Hashtbl.find t.groups paper in
      List.iter (fun r -> Hashtbl.replace t.workload r (workload_of t r - 1)) old;
      List.iter
        (fun r ->
          let w = workload_of t r + 1 in
          if w > t.delta_r then
            failc "set-group overloads reviewer %d past delta-r" r;
          Hashtbl.replace t.workload r w)
        group;
      Hashtbl.replace t.groups paper group
  | Event.Pend p ->
      if not (Hashtbl.mem t.papers p) then failc "pend of unknown paper %d" p;
      Hashtbl.replace t.pending p ()
  | Event.Unpend p -> Hashtbl.remove t.pending p

let snapshot_of t =
  ( Hashtbl.copy t.papers,
    Hashtbl.copy t.reviewers,
    Hashtbl.copy t.coi,
    Hashtbl.copy t.bids,
    Hashtbl.copy t.groups,
    Hashtbl.copy t.workload,
    Hashtbl.copy t.pending,
    t.last_client,
    t.applied )

let restore t (p, r, c, b, g, w, pe, lc, ap) =
  let swap dst src =
    Hashtbl.reset dst;
    Hashtbl.iter (Hashtbl.replace dst) src
  in
  swap t.papers p;
  swap t.reviewers r;
  swap t.coi c;
  swap t.bids b;
  swap t.groups g;
  swap t.workload w;
  swap t.pending pe;
  t.last_client <- lc;
  t.applied <- ap

let commit t entry =
  let seq = Event.entry_seq entry in
  if seq <> t.applied + 1 then
    Error
      (Printf.sprintf "journal gap: entry seq %d after applied seq %d" seq
         t.applied)
  else begin
    let saved = snapshot_of t in
    try
      (match entry with
      | Event.Client { id; req; _ } ->
          if id <= t.last_client then
            failc "event id %d not above last accepted id %d" id t.last_client;
          apply_membership t req;
          t.last_client <- id
      | Event.Improve _ -> ());
      List.iter (apply_op t) (Event.entry_ops entry);
      t.applied <- seq;
      Ok ()
    with Commit_error m ->
      restore t saved;
      (* The rolled-back fold may have already rebound or relied on the
         dense view; dropping it is always safe, keeping it is not. *)
      t.dense <- None;
      Error m
  end

(* {1 Snapshot codec} *)

let encode t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "wgrap-serve-state 1";
  line "config dim=%d delta-p=%d delta-r=%d" t.dim t.delta_p t.delta_r;
  line "cursor applied=%d last-client=%d" t.applied t.last_client;
  List.iter
    (fun p -> line "paper %d %s" p (Event.encode_vec (Hashtbl.find t.papers p)))
    (sorted_keys t.papers);
  List.iter
    (fun r ->
      line "reviewer %d %s" r (Event.encode_vec (Hashtbl.find t.reviewers r)))
    (sorted_keys t.reviewers);
  List.iter
    (fun (p, r) -> line "coi %d %d" p r)
    (List.sort compare (Hashtbl.fold (fun k () a -> k :: a) t.coi []));
  List.iter
    (fun (p, r) -> line "bid %d %d %h" p r (Hashtbl.find t.bids (p, r)))
    (List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) t.bids []));
  List.iter
    (fun p ->
      line "group %d %s" p
        (match Hashtbl.find t.groups p with
        | [] -> "-"
        | g -> String.concat "," (List.map string_of_int g)))
    (sorted_keys t.groups);
  List.iter (fun p -> line "pending %d" p) (pending t);
  Buffer.contents buf

let crc t = Crc32.hex (encode t)

(* Decode + self-certification: reject any image that a legal entry
   fold could not have produced. *)
let decode s =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error ("state image: " ^ m)) fmt in
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> l <> "")
  in
  match lines with
  | magic :: config :: cursor :: rest when magic = "wgrap-serve-state 1" -> (
      let header =
        try
          Scanf.sscanf config "config dim=%d delta-p=%d delta-r=%d"
            (fun dim dp dr ->
              Scanf.sscanf cursor "cursor applied=%d last-client=%d"
                (fun applied last_client ->
                  Some (dim, dp, dr, applied, last_client)))
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
      in
      match header with
      | None -> fail "malformed config/cursor header"
      | Some (dim, dp, dr, applied, last_client) ->
              let* t = create ~dim ~delta_p:dp ~delta_r:dr () in
              if applied < 0 || last_client < -1 then fail "negative cursor"
              else begin
                t.applied <- applied;
                t.last_client <- last_client;
                let parse_line l =
                  match String.split_on_char ' ' l with
                  | [ "paper"; p; v ] -> (
                      match (int_of_string_opt p, Event.decode_vec v) with
                      | Some p, Ok vec when Array.length vec = dim ->
                          if Hashtbl.mem t.papers p then fail "duplicate paper %d" p
                          else begin
                            Hashtbl.replace t.papers p vec;
                            Ok ()
                          end
                      | _ -> fail "bad paper line %S" l)
                  | [ "reviewer"; r; v ] -> (
                      match (int_of_string_opt r, Event.decode_vec v) with
                      | Some r, Ok vec when Array.length vec = dim ->
                          if Hashtbl.mem t.reviewers r then
                            fail "duplicate reviewer %d" r
                          else begin
                            Hashtbl.replace t.reviewers r vec;
                            Ok ()
                          end
                      | _ -> fail "bad reviewer line %S" l)
                  | [ "coi"; p; r ] -> (
                      match (int_of_string_opt p, int_of_string_opt r) with
                      | Some p, Some r ->
                          Hashtbl.replace t.coi (p, r) ();
                          Ok ()
                      | _ -> fail "bad coi line %S" l)
                  | [ "bid"; p; r; w ] -> (
                      match
                        ( int_of_string_opt p,
                          int_of_string_opt r,
                          float_of_string_opt w )
                      with
                      | Some p, Some r, Some w when Float.is_finite w && w >= 0. ->
                          Hashtbl.replace t.bids (p, r) w;
                          Ok ()
                      | _ -> fail "bad bid line %S" l)
                  | [ "group"; p; ids ] -> (
                      match int_of_string_opt p with
                      | Some p ->
                          let* g =
                            if ids = "-" then Ok []
                            else
                              let parts = String.split_on_char ',' ids in
                              let rec go acc = function
                                | [] -> Ok (List.rev acc)
                                | x :: rest -> (
                                    match int_of_string_opt x with
                                    | Some r -> go (r :: acc) rest
                                    | None -> fail "bad group member %S" x)
                              in
                              go [] parts
                          in
                          if Hashtbl.mem t.groups p then
                            fail "duplicate group for paper %d" p
                          else begin
                            Hashtbl.replace t.groups p g;
                            Ok ()
                          end
                      | None -> fail "bad group line %S" l)
                  | [ "pending"; p ] -> (
                      match int_of_string_opt p with
                      | Some p ->
                          Hashtbl.replace t.pending p ();
                          Ok ()
                      | None -> fail "bad pending line %S" l)
                  | _ -> fail "unrecognized line %S" l
                in
                let rec feed = function
                  | [] -> Ok ()
                  | l :: rest ->
                      let* () = parse_line l in
                      feed rest
                in
                let* () = feed rest in
                (* certification: the image must satisfy every invariant
                   a legal commit fold maintains *)
                let* () =
                  Hashtbl.fold
                    (fun p _ acc ->
                      let* () = acc in
                      if not (Hashtbl.mem t.groups p) then
                        fail "paper %d has no group line" p
                      else Ok ())
                    t.papers (Ok ())
                in
                let* () =
                  Hashtbl.fold
                    (fun p g acc ->
                      let* () = acc in
                      if not (Hashtbl.mem t.papers p) then
                        fail "group for unknown paper %d" p
                      else if List.sort compare g <> g then
                        fail "group of paper %d not ascending" p
                      else if List.length g > dp then
                        fail "group of paper %d above delta-p" p
                      else
                        List.fold_left
                          (fun acc r ->
                            let* () = acc in
                            if not (Hashtbl.mem t.reviewers r) then
                              fail "group of paper %d uses unknown reviewer %d" p r
                            else if Hashtbl.mem t.coi (p, r) then
                              fail "group of paper %d violates conflict with %d" p r
                            else begin
                              Hashtbl.replace t.workload r (workload_of t r + 1);
                              Ok ()
                            end)
                          (Ok ()) g)
                    t.groups (Ok ())
                in
                let* () =
                  Hashtbl.fold
                    (fun r w acc ->
                      let* () = acc in
                      if w > dr then fail "reviewer %d above delta-r" r else Ok ())
                    t.workload (Ok ())
                in
                let* () =
                  Hashtbl.fold
                    (fun p () acc ->
                      let* () = acc in
                      if not (Hashtbl.mem t.papers p) then
                        fail "pending unknown paper %d" p
                      else Ok ())
                    t.pending (Ok ())
                in
                (* pair state is purged on withdraw/leave and only ever
                   admitted against live ids, so an orphaned coi/bid is
                   unreachable by any legal fold — and a stale conflict
                   smuggled in here would spring back to life if its
                   paper id were later re-added *)
                let* () =
                  Hashtbl.fold
                    (fun (p, r) () acc ->
                      let* () = acc in
                      if not (Hashtbl.mem t.papers p) then
                        fail "coi (%d, %d) references unknown paper" p r
                      else if not (Hashtbl.mem t.reviewers r) then
                        fail "coi (%d, %d) references unknown reviewer" p r
                      else Ok ())
                    t.coi (Ok ())
                in
                let* () =
                  Hashtbl.fold
                    (fun (p, r) _ acc ->
                      let* () = acc in
                      if not (Hashtbl.mem t.papers p) then
                        fail "bid (%d, %d) references unknown paper" p r
                      else if not (Hashtbl.mem t.reviewers r) then
                        fail "bid (%d, %d) references unknown reviewer" p r
                      else Ok ())
                    t.bids (Ok ())
                in
                Ok t
              end)
  | _ :: _ -> fail "bad magic line"
  | [] -> fail "empty image"
