(** The [wgrap serve] event loop: a single-threaded server keeping one
    solved instance resident and answering line-protocol events with
    minimal re-solves.

    {2 The ack contract}

    For every accepted mutation, in order: parse → validate → {e plan}
    (pure re-solve under the per-event deadline) → {e journal} the
    entry (event + planned ops, fsynced) → {e commit} → respond. The
    response is only written after the journal append returns, so an
    acknowledged event is always durable; a crash at any point loses at
    most un-acknowledged work, and restarting with [--resume] replays
    the journal to a state bit-identical to a fresh fold over the
    acknowledged prefix.

    A journal append failure refuses the event ([err ... journal
    append failed]) — the service degrades to read-only-ish behaviour
    rather than lying about durability, and [health] reports it. A
    commit failure {e after} a successful append indicates a planner
    bug or corrupted memory; the server fail-stops (the un-committed
    entry is rejected by replay certification, so it is as if it never
    happened — it was never acked).

    {2 Degradation and improvement}

    Mutations are planned under [config.event_budget]; a deadline that
    fires mid-solve yields a degraded (but constraint-valid) answer,
    flagged [status=degraded] with a {!Wgrap.Solver.describe_reason}
    detail, and the affected paper is marked pending. Idle loop time is
    spent on bounded improvement slices that repair pending papers;
    each repair is journaled as an [Improve] entry before it is
    applied, preserving replay determinism.

    {2 Responses}

    {v
    ok <id> seq=<n> status=complete|degraded|short [detail="..."]
    ok <id> paper=<p> group=<r1,r2,..|-> score=<s> short=<b> pending=<b>
    ok <id> health=ok|degraded journal=ok|failed|none snapshot=ok|failed|none pending=<n> restarts=<n>
    ok <id> stats {"accepted": <n>, ..., "objective": ..., "coverage": ..., "fairness": ...}
    err <id|-> line=<n> <reason>
    busy <id|-> retry-after=<ms>
    v}

    [stats] answers one compact JSON document (service counters
    followed by the {!Wgrap.Summary.to_json} fields over the committed
    groups, under [config.objective]) on a single line. *)

type config = {
  dim : int;
  delta_p : int;
  delta_r : int;
  objective : Wgrap.Objective.spec;
      (** planner-only scoring backend (default coverage): installed
          into the state at construction, it shapes planned groups and
          the [stats] summary but never the journal format — replay is
          objective-independent *)
  event_budget : float option;  (** seconds of re-solve per mutation *)
  improve_slice : float;  (** seconds per idle improvement slice *)
  queue_limit : int;  (** admission queue bound *)
  p99_limit_ms : float;  (** latency trip wire *)
  snapshot_every : int;  (** journal entries between snapshots *)
  max_restarts : int;  (** supervisor restart budget *)
  max_line : int;  (** transport line-length bound, bytes *)
  idle_poll : float;  (** seconds to block waiting for input when idle *)
}

val default : dim:int -> delta_p:int -> delta_r:int -> config

type t

val create : ?durable:Durable.t -> config -> (t, string) result
(** Fresh empty server. Without [durable] the server is volatile
    (useful for tests and benchmarks; [health] reports [journal=none]). *)

val of_state : ?durable:Durable.t -> config -> State.t -> t
(** Server around a recovered state (see {!load_state}); installs
    [config.objective] into it. Raises [Invalid_argument] when the
    objective does not fit the state's dimension. *)

val state : t -> State.t

val handle_line : t -> string -> string
(** Process one raw input line and return the one response line.
    Admission control is the {!run} loop's concern — this path always
    admits. Never raises on hostile input. *)

val improve_once : t -> bool
(** One bounded improvement slice ([config.improve_slice]); journals
    and applies at most one [Improve] entry. Returns [false] when
    there is nothing (more) to improve right now. *)

val run : t -> input:Unix.file_descr -> output:out_channel -> (unit, string) result
(** The event loop over a descriptor (stdin, or an accepted socket
    client): drain available lines through admission, answer in order,
    spend idle time on improvement, snapshot on cadence, final
    snapshot at EOF. A crashed loop iteration is restarted by the
    built-in supervisor — bounded restarts ([config.max_restarts])
    with capped exponential backoff; past the budget, [Error].

    If the output side goes away mid-conversation (EPIPE on a closed
    pipe or socket), the session ends cleanly with [Ok]: journaled
    events stay durable, un-acked lines are dropped for the client's
    at-least-once retry. Callers embedding [run] in a process that has
    not already done so should ignore [SIGPIPE], or the write kills
    the process before the exception can be handled. *)

val serve_socket :
  ?max_clients:int -> t -> path:string -> (unit, string) result
(** Listen on a Unix-domain socket and {!run} accepted clients
    sequentially (the state is shared across connections). Ignores
    [SIGPIPE] for the process, so a client disconnecting mid-response
    ends that client's session instead of killing the service.
    [max_clients] bounds how many connections to serve (for tests and
    soaks); default is to accept until the process dies. *)

val load_state : config -> dir:string -> (State.t * string list, string) result
(** Recover state from a durable directory: certified snapshot (if
    any) plus replay of the verified journal tail. The string list
    carries human-readable recovery notes (torn tail truncated,
    corrupt snapshot ignored and journal refolded, ...).

    Refuses ([Error]) when serving on would lose acknowledged events:
    a CRC-valid journal record the fold cannot decode or commit with
    records stranded behind it (new appends would collide with the
    stranded seqs and be unreachable by every future replay), or a
    snapshot ahead of everything the journal holds (the acked prefix
    is missing). Both need operator intervention, not silent loss. *)

val verify : config -> dir:string -> (string, string) result
(** The soak oracle: fold the whole journal from an empty state and
    independently recover via snapshot + tail replay; [Ok report] iff
    both states are byte-identical under {!State.encode}. A poisoned
    journal or a recovered state ahead of the journal fold (acked
    events lost past a tear) is an [Error], never a skipped check. *)
