module Journal = Wgrap_persist.Journal
module Blob = Wgrap_persist.Blob

let journal_path dir = Filename.concat dir "events.wal"
let snapshot_path dir = Filename.concat dir "state.img"
let quarantine_path dir = Filename.concat dir "quarantine.log"

type t = {
  dir : string;
  mutable writer : Journal.Raw.writer option;
  mutable journal_error : string option;
  mutable snapshot_error : string option;
  mutable quarantine_oc : out_channel option;
  mutable quarantine_drops : int;
}

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let describe_io = function
  | Sys_error m -> m
  | Unix.Unix_error (e, fn, arg) ->
      Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e)
  | e -> Printexc.to_string e

let open_ ~dir =
  try
    mkdir_p dir;
    Ok
      {
        dir;
        writer = Some (Journal.Raw.open_writer (journal_path dir));
        journal_error = None;
        snapshot_error = None;
        quarantine_oc = None;
        quarantine_drops = 0;
      }
  with (Sys_error _ | Unix.Unix_error _) as e -> Error (describe_io e)

let close_writer t =
  match t.writer with
  | None -> ()
  | Some w ->
      t.writer <- None;
      (* best-effort: every durable record was fsynced by its append,
         so a failing close has nothing left to lose *)
      (try Journal.Raw.close_writer w with _ -> ())
      [@wgrap.allow "silent-catch"]

let append t payload =
  let writer =
    match t.writer with
    | Some w -> Ok w
    | None -> (
        (* one reopen attempt per append — no retry loop; if the disk
           is still broken the event is refused again *)
        try
          let w = Journal.Raw.open_writer (journal_path t.dir) in
          t.writer <- Some w;
          Ok w
        with (Sys_error _ | Unix.Unix_error _) as e -> Error (describe_io e))
  in
  match writer with
  | Error m ->
      t.journal_error <- Some m;
      Error ("journal reopen failed: " ^ m)
  | Ok w -> (
      try
        Journal.Raw.append w payload;
        t.journal_error <- None;
        Ok ()
      with (Sys_error _ | Unix.Unix_error _ | Invalid_argument _) as e ->
        let m = describe_io e in
        t.journal_error <- Some m;
        close_writer t;
        Error ("journal append failed: " ^ m))

let snapshot t payload =
  try
    Blob.write ~path:(snapshot_path t.dir) payload;
    t.snapshot_error <- None;
    Ok ()
  with (Sys_error _ | Unix.Unix_error _) as e ->
    let m = describe_io e in
    t.snapshot_error <- Some m;
    Error m

let journal_failed t = t.journal_error
let snapshot_failed t = t.snapshot_error

let quarantine t ~line ~reason raw =
  try
    let oc =
      match t.quarantine_oc with
      | Some oc -> oc
      | None ->
          let oc =
            open_out_gen
              [ Open_append; Open_creat; Open_wronly ]
              0o644 (quarantine_path t.dir)
          in
          t.quarantine_oc <- Some oc;
          oc
    in
    Printf.fprintf oc "line=%d reason=%S raw=%S\n" line reason raw;
    flush oc
  with Sys_error _ | Unix.Unix_error (_, _, _) ->
    (* hostile input must never crash the loop, even on a dead disk;
       the drop is still counted for [stats] *)
    t.quarantine_drops <- t.quarantine_drops + 1;
    (match t.quarantine_oc with
    | Some oc ->
        t.quarantine_oc <- None;
        (try close_out_noerr oc with _ -> ()) [@wgrap.allow "silent-catch"]
    | None -> ())

let close t =
  close_writer t;
  match t.quarantine_oc with
  | Some oc ->
      t.quarantine_oc <- None;
      close_out_noerr oc
  | None -> ()

type loaded = {
  snapshot : string option;
  snapshot_error : string option;
  records : string list;
  torn : bool;
}

let load ~dir =
  let snapshot, snapshot_error =
    match Blob.read (snapshot_path dir) with
    | Ok payload -> (Some payload, None)
    | Error Blob.Missing -> (None, None)
    | Error (Blob.Corrupt m) -> (None, Some m)
  in
  let { Journal.Raw.payloads; torn } = Journal.Raw.replay (journal_path dir) in
  { snapshot; snapshot_error; records = payloads; torn }
