module Journal = Wgrap_persist.Journal
module Blob = Wgrap_persist.Blob

let journal_path dir = Filename.concat dir "events.wal"
let snapshot_path dir = Filename.concat dir "state.img"
let quarantine_path dir = Filename.concat dir "quarantine.log"
let torn_tail_path dir = Filename.concat dir "events.wal.torn"

type t = {
  dir : string;
  mutable writer : Journal.Raw.writer option;
  mutable durable_bytes : int;
      (** byte length of the journal's verified record prefix — every
          append lands exactly here, so a torn or half-written tail can
          be cut back to this offset before the next write *)
  mutable journal_error : string option;
  mutable snapshot_error : string option;
  mutable quarantine_oc : out_channel option;
  mutable quarantine_drops : int;
}

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let describe_io = function
  | Wgrap_persist.Persist_error.Disk_full _ as e ->
      Wgrap_persist.Persist_error.describe e
  | Sys_error m -> m
  | Unix.Unix_error (e, fn, arg) ->
      Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e)
  | e -> Printexc.to_string e

let file_size path =
  if Sys.file_exists path then (Unix.stat path).Unix.st_size else 0

(* Replay stops at the first bad record, so appending after a torn tail
   would strand every later record — fsynced, acked, it does not
   matter — beyond any future replay's reach (and a tail with no final
   newline would merge the next record into the partial line). Cut the
   file back to the verified prefix before the writer opens; the cut
   bytes were never acked, but keep them in a side file for the
   operator anyway. *)
let cut_torn_tail ~dir ~valid_bytes =
  let path = journal_path dir in
  let size = file_size path in
  if size > valid_bytes then begin
    let tail =
      (* one-shot recovery-time read of a local file, not a client
         stream — a deadline would add nothing here *)
      (In_channel.with_open_bin path (fun ic ->
           In_channel.seek ic (Int64.of_int valid_bytes);
           In_channel.input_all ic)
       [@wgrap.allow "unbounded-retry"])
    in
    let oc =
      open_out_gen
        [ Open_append; Open_creat; Open_wronly ]
        0o644 (torn_tail_path dir)
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Printf.fprintf oc "-- torn tail: %d bytes cut at offset %d --\n"
          (String.length tail) valid_bytes;
        output_string oc tail;
        if tail <> "" && tail.[String.length tail - 1] <> '\n' then
          output_char oc '\n');
    Journal.Raw.truncate path valid_bytes
  end

let open_ ~dir =
  try
    mkdir_p dir;
    let { Journal.Raw.valid_bytes; _ } = Journal.Raw.replay (journal_path dir) in
    cut_torn_tail ~dir ~valid_bytes;
    Ok
      {
        dir;
        writer = Some (Journal.Raw.open_writer (journal_path dir));
        durable_bytes = valid_bytes;
        journal_error = None;
        snapshot_error = None;
        quarantine_oc = None;
        quarantine_drops = 0;
      }
  with (Sys_error _ | Unix.Unix_error _ | Wgrap_persist.Persist_error.Disk_full _) as e ->
    Error (describe_io e)

let close_writer t =
  match t.writer with
  | None -> ()
  | Some w ->
      t.writer <- None;
      (* best-effort: every durable record was fsynced by its append,
         so a failing close has nothing left to lose *)
      (try Journal.Raw.close_writer w with _ -> ())
      [@wgrap.allow "silent-catch"]

let append t payload =
  let writer =
    match t.writer with
    | Some w -> Ok w
    | None -> (
        (* one reopen attempt per append — no retry loop; if the disk
           is still broken the event is refused again. The failed
           append may have left a partial record behind: cut back to
           the durable prefix so the retry cannot land after it. *)
        try
          let path = journal_path t.dir in
          if file_size path > t.durable_bytes then
            Journal.Raw.truncate path t.durable_bytes;
          let w = Journal.Raw.open_writer path in
          t.writer <- Some w;
          Ok w
        with
        | (Sys_error _ | Unix.Unix_error _ | Wgrap_persist.Persist_error.Disk_full _)
          as e ->
            Error (describe_io e))
  in
  match writer with
  | Error m ->
      t.journal_error <- Some m;
      Error ("journal reopen failed: " ^ m)
  | Ok w -> (
      try
        Journal.Raw.append w payload;
        t.durable_bytes <- t.durable_bytes + Journal.Raw.record_bytes payload;
        t.journal_error <- None;
        Ok ()
      with
      | ( Sys_error _ | Unix.Unix_error _ | Invalid_argument _
        | Wgrap_persist.Persist_error.Disk_full _ ) as e ->
        let m = describe_io e in
        t.journal_error <- Some m;
        close_writer t;
        Error ("journal append failed: " ^ m))

let snapshot t payload =
  try
    Blob.write ~path:(snapshot_path t.dir) payload;
    t.snapshot_error <- None;
    Ok ()
  with
  | (Sys_error _ | Unix.Unix_error _ | Wgrap_persist.Persist_error.Disk_full _) as e
  ->
    let m = describe_io e in
    t.snapshot_error <- Some m;
    Error m

let journal_failed t = t.journal_error
let snapshot_failed t = t.snapshot_error

let quarantine t ~line ~reason raw =
  try
    let oc =
      match t.quarantine_oc with
      | Some oc -> oc
      | None ->
          let oc =
            open_out_gen
              [ Open_append; Open_creat; Open_wronly ]
              0o644 (quarantine_path t.dir)
          in
          t.quarantine_oc <- Some oc;
          oc
    in
    Printf.fprintf oc "line=%d reason=%S raw=%S\n" line reason raw;
    flush oc
  with Sys_error _ | Unix.Unix_error (_, _, _) ->
    (* hostile input must never crash the loop, even on a dead disk;
       the drop is still counted for [stats] *)
    t.quarantine_drops <- t.quarantine_drops + 1;
    (match t.quarantine_oc with
    | Some oc ->
        t.quarantine_oc <- None;
        (try close_out_noerr oc with _ -> ()) [@wgrap.allow "silent-catch"]
    | None -> ())

let close t =
  close_writer t;
  match t.quarantine_oc with
  | Some oc ->
      t.quarantine_oc <- None;
      close_out_noerr oc
  | None -> ()

type loaded = {
  snapshot : string option;
  snapshot_error : string option;
  records : string list;
  torn : bool;
}

let load ~dir =
  let snapshot, snapshot_error =
    match Blob.read (snapshot_path dir) with
    | Ok payload -> (Some payload, None)
    | Error Blob.Missing -> (None, None)
    | Error (Blob.Corrupt m) -> (None, Some m)
  in
  let { Journal.Raw.payloads; torn; valid_bytes = _ } =
    Journal.Raw.replay (journal_path dir)
  in
  { snapshot; snapshot_error; records = payloads; torn }
