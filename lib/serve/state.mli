(** The resident assignment state behind [wgrap serve], and the
    plan/commit split that makes the WAL deterministic.

    The state holds the live conference — papers, reviewers, conflicts,
    bid weights, the current reviewer group of every paper, and the set
    of papers {e pending} improvement attention — keyed by the client's
    external ids.

    Mutations go through two phases:

    - {!plan} is {e pure}: it computes, under an optional wall-clock
      deadline, the ops (group changes, pending marks) the event should
      cause, running a minimal re-solve — {!Wgrap.Amend} when the dense
      assignment is amendable, a single-paper {!Wgrap.Solver.jra}
      otherwise, and a greedy hole-fill as the degraded backstop. The
      result may depend on the wall clock; that is fine, because
    - {!commit} applies a journal {e entry} (event + planned ops) and is
      strictly deterministic: the same entry sequence folded over the
      same initial state yields a bit-identical {!encode}. The server
      journals the entry before committing it, so crash replay is a
      pure fold.

    {!commit} also re-checks the hard constraints (group sizes ≤
    delta_p, workloads ≤ delta_r, no COI member, members exist) and
    refuses an entry that violates them — a planner bug or a corrupted
    journal fails loudly instead of silently breaking feasibility. *)

type t

val create :
  ?objective:Wgrap.Objective.spec ->
  dim:int ->
  delta_p:int ->
  delta_r:int ->
  unit ->
  (t, string) result
(** Empty state; validates [dim >= 1], [delta_p >= 1], [delta_r >= 1],
    and the objective's dimension (taxonomy tree vs [dim]). The
    objective (default coverage) is planner-only runtime config: it
    shapes how planners view reviewer expertise (the taxonomy
    transform) and what {!summary} values, but every committed op is
    journaled as data — replay and the snapshot codec are
    objective-independent, so the same journal folds to the same
    {!encode} under any objective. *)

(** {2 Accessors} *)

val dim : t -> int
val delta_p : t -> int
val delta_r : t -> int

val objective : t -> Wgrap.Objective.spec

val set_objective : t -> Wgrap.Objective.spec -> (unit, string) result
(** Swap the resident objective (e.g. after {!decode}, which always
    restores coverage); drops the resident dense view so the next plan
    rebuilds it over the new scoring view. Fails on a dimension
    mismatch, leaving the state unchanged. *)

val applied : t -> int
(** Sequence number of the last committed journal entry (0 = none). *)

val last_client : t -> int
(** Id of the last accepted client mutation (-1 = none); the
    strictly-increasing-id guard compares against this. *)

val n_papers : t -> int
val n_reviewers : t -> int

val pending : t -> int list
(** Papers marked for improvement attention, ascending. *)

val group : t -> int -> int list option
(** Current reviewer group of a paper (ascending ids). *)

type answer = {
  group : int list;
  score : float;
      (** bid-unweighted coverage of the group under the resident
          objective's expertise view, for reporting *)
  short : bool;  (** the group is below [delta_p] *)
  is_pending : bool;
}

val query : t -> int -> answer option

val summary : t -> Wgrap.Summary.t option
(** Full summary (coverage, fairness, workload, objective value) of the
    committed groups over the resident dense view, under the resident
    objective — the payload of the service's [stats] read. [None] while
    the roster cannot be mapped onto a dense instance (no papers or no
    reviewers, or an objective whose parameters do not fit it). *)

(** {2 Plan} *)

val validate_req : t -> Event.req -> (unit, string) result
(** Admission-time semantic validation (unknown/duplicate ids, vector
    dimension, conflicted bid, ...). {!plan} assumes its input passed. *)

type planned = { ops : Event.op list; reasons : Wgrap.Solver.reason list }
(** [reasons] non-empty means the answer is degraded (deadline cut a
    re-solve short, or an [Amend] repair fell back to greedy). *)

val plan :
  ?deadline:Wgrap_util.Timer.deadline -> t -> Event.req -> planned
(** Pure with respect to observable state ({!encode} is unchanged, so
    replay determinism is unaffected); internally it fills and reuses a
    resident dense view — one {!Wgrap.Instance.t} plus one shared
    {!Wgrap.Gain_matrix.t} maintained incrementally across events
    instead of rebuilt per event. Never raises. *)

type improvement =
  | Improved of Event.op list  (** journal these ops as an [Improve] entry *)
  | Exhausted of int
      (** nothing more can be done for this pending paper right now;
          the caller should memoize it and ask again (memos reset on
          the next mutation) *)
  | Idle  (** no pending paper left unskipped *)

val plan_improve :
  ?deadline:Wgrap_util.Timer.deadline ->
  skip:(int -> bool) ->
  t ->
  improvement
(** One bounded improvement step for the first non-skipped pending
    paper (ascending): refill a short group greedily, or re-solve a
    degraded one and keep the better result. Pure; never raises. *)

(** {2 Commit} *)

val commit : t -> Event.entry -> (unit, string) result
(** Apply one journal entry. The entry's sequence must be exactly
    [applied t + 1] (else [Error], detecting journal gaps), client ids
    must be strictly increasing, and the resulting state must satisfy
    the hard constraints. On [Error] the state is unchanged. *)

(** {2 Snapshot codec} *)

val encode : t -> string
(** Canonical, sorted, [%h]-float text image. Two states reached by the
    same entry fold are byte-identical under [encode] — this is the
    bit-exactness oracle the kill/resume tests diff. *)

val decode : string -> (t, string) result
(** Inverse of {!encode}, with full self-certification: structural
    parse, then constraint re-validation (the same checks {!commit}
    enforces). A snapshot that fails certification is rejected, never
    resumed. *)

val crc : t -> string
(** CRC-32 hex of {!encode} — the short state digest used by soak
    reports and the [--verify] oracle. *)
