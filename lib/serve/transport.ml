module Timer = Wgrap_util.Timer

type t = {
  fd : Unix.file_descr;
  max_line : int;
  buf : Buffer.t;  (** bytes read but not yet returned *)
  mutable discarding : bool;  (** inside an oversized line, eating to '\n' *)
  mutable eof : bool;
}

let of_fd ?(max_line = 65536) fd =
  { fd; max_line; buf = Buffer.create 512; discarding = false; eof = false }

type read = Line of string | Oversized | Timeout | Eof

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

(* Pull the first complete line out of the buffer, honouring the
   oversized-discard state machine. *)
let rec take_buffered t =
  let data = Buffer.contents t.buf in
  match String.index_opt data '\n' with
  | Some i ->
      Buffer.clear t.buf;
      Buffer.add_substring t.buf data (i + 1) (String.length data - i - 1);
      if t.discarding then begin
        (* the tail of an oversized line: drop it and report once *)
        t.discarding <- false;
        Some Oversized
      end
      else if i > t.max_line then Some Oversized
      else Some (Line (strip_cr (String.sub data 0 i)))
  | None ->
      if t.discarding then begin
        (* still no newline: keep eating, bound the buffer *)
        Buffer.clear t.buf;
        None
      end
      else if Buffer.length t.buf > t.max_line then begin
        t.discarding <- true;
        take_buffered t
      end
      else None

let read_line t ~timeout =
  let deadline = Timer.deadline (Float.max 0. timeout) in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match take_buffered t with
    | Some r -> r
    | None ->
        if t.eof then Eof
        else begin
          let wait = Timer.remaining deadline in
          match Unix.select [ t.fd ] [] [] wait with
          | [], _, _ -> Timeout
          | _ -> (
              match Unix.read t.fd chunk 0 (Bytes.length chunk) with
              | 0 ->
                  t.eof <- true;
                  (* a partial line at EOF is torn framing, not an event *)
                  if t.discarding then begin
                    t.discarding <- false;
                    Oversized
                  end
                  else Eof
              | n ->
                  Buffer.add_subbytes t.buf chunk 0 n;
                  go ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                  if Timer.expired deadline then Timeout else go ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
              if Timer.expired deadline then Timeout else go ()
        end
  in
  go ()

let pending t =
  (not t.discarding) && String.contains (Buffer.contents t.buf) '\n'

let listen_unix ~path =
  try
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 8;
    Ok fd
  with
  | Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "socket %s: %s: %s" path fn (Unix.error_message e))
  | Sys_error m -> Error (Printf.sprintf "socket %s: %s" path m)

let accept lfd ~timeout =
  match Unix.select [ lfd ] [] [] (Float.max 0. timeout) with
  | [], _, _ -> None
  | _ -> (
      match Unix.accept lfd with
      | fd, _ -> Some fd
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> None)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> None
