(** The service's durability layer: a {!Wgrap_persist.Journal.Raw}
    event journal plus periodic {!Wgrap_persist.Blob} state snapshots
    in one state directory.

    Unlike the batch checkpoint {!Wgrap_persist.Store} — where I/O is
    best-effort and a failing disk merely disables checkpointing — this
    layer's errors are {e load-bearing}: an event whose journal append
    fails is refused (never acknowledged), and a failed snapshot is
    reported through [health] rather than swallowed. Both failure
    states are sticky and queryable. *)

type t

val journal_path : string -> string
(** [dir/events.wal] *)

val snapshot_path : string -> string
(** [dir/state.img] *)

val quarantine_path : string -> string
(** [dir/quarantine.log] — rejected input lines, one per line, with
    line numbers and reasons. *)

val torn_tail_path : string -> string
(** [dir/events.wal.torn] — forensic copy of every torn/corrupt journal
    tail that {!open_} physically cut off. *)

val open_ : dir:string -> (t, string) result
(** Create the directory (with parents) and open the journal for
    appending. A torn or corrupt tail is physically truncated first
    (the cut bytes are preserved in {!torn_tail_path}): replay stops at
    the first bad record, so appending after one would strand every
    later record — even fsynced, acked ones — beyond any future
    replay's reach. The writer therefore always resumes exactly at the
    end of the verified record prefix. *)

val append : t -> string -> (unit, string) result
(** Append one journal payload, fsynced, via {!Journal.Raw.append}.
    [Error] means the record may not be durable — the caller must not
    acknowledge the event. The writer is closed on failure and one
    reopen is attempted on the next append (no retry loop); the reopen
    truncates any half-written record from the failed append back to
    the durable prefix before writing. *)

val snapshot : t -> string -> (unit, string) result
(** Atomically replace the state snapshot ({!Blob.write}: temp file,
    fsync, rename, CRC trailer). *)

val journal_failed : t -> string option
val snapshot_failed : t -> string option
(** Last unrecovered failure of each path, for [health]. A later
    success clears the flag. *)

val quarantine : t -> line:int -> reason:string -> string -> unit
(** Append one rejected raw line to the quarantine side file
    (best-effort: quarantine I/O failures are counted but never fatal —
    hostile input must not crash the loop even on a full disk). *)

val close : t -> unit

(** {2 Recovery} *)

type loaded = {
  snapshot : string option;  (** certified snapshot payload, if any *)
  snapshot_error : string option;
      (** a snapshot file existed but failed CRC/structure checks *)
  records : string list;  (** verified journal payloads, in order *)
  torn : bool;
      (** the journal has a torn/corrupt tail, excluded from [records].
          [load] is read-only; the next {!open_} cuts it physically. *)
}

val load : dir:string -> loaded
(** Read back everything the directory holds. Never raises; a missing
    directory is an empty history. *)
