type t = {
  max_queue : int;
  p99_limit_ms : float;
  window : float array;
  mutable filled : int;  (** samples recorded, capped at the window size *)
  mutable next : int;  (** ring cursor *)
  mutable shed : int;
}

let create ?(window = 256) ~max_queue ~p99_limit_ms () =
  if window < 1 then invalid_arg "Admission.create: window must be >= 1";
  if max_queue < 1 then invalid_arg "Admission.create: max_queue must be >= 1";
  {
    max_queue;
    p99_limit_ms;
    window = Array.make window 0.;
    filled = 0;
    next = 0;
    shed = 0;
  }

let observe t ms =
  t.window.(t.next) <- ms;
  t.next <- (t.next + 1) mod Array.length t.window;
  if t.filled < Array.length t.window then t.filled <- t.filled + 1

let p99_ms t =
  if t.filled = 0 then 0.
  else begin
    let sorted = Array.sub t.window 0 t.filled in
    Array.sort compare sorted;
    (* nearest-rank p99: the smallest sample >= 99% of the window *)
    let rank = max 0 (int_of_float (ceil (0.99 *. float_of_int t.filled)) - 1) in
    sorted.(min rank (t.filled - 1))
  end

let mean_ms t =
  if t.filled = 0 then 0.
  else begin
    let s = ref 0. in
    for i = 0 to t.filled - 1 do
      s := !s +. t.window.(i)
    done;
    !s /. float_of_int t.filled
  end

type decision = Admit | Shed of int

let decide t ~depth =
  let overloaded =
    depth >= t.max_queue
    || (t.filled > 0 && p99_ms t > t.p99_limit_ms && depth >= (t.max_queue + 1) / 2)
  in
  if not overloaded then Admit
  else begin
    t.shed <- t.shed + 1;
    let per_event = Float.max 1. (mean_ms t) in
    let hint = int_of_float (ceil (float_of_int (max depth 1) *. per_event)) in
    Shed (max 1 hint)
  end

let shed_count t = t.shed
