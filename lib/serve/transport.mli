(** Deadline-aware line transport over a file descriptor.

    This module owns every blocking read the service performs — the
    event loop only ever calls {!read_line} with an explicit [timeout],
    so a stuck peer can never wedge the loop past its next idle slice
    (this ownership is enforced by the [unbounded-retry] lint rule:
    blocking-read primitives in [lib/serve] outside this file are
    findings).

    Lines longer than [max_line] are discarded up to the next newline
    and reported as [`Oversized] — an oversized event is rejected, it
    is never truncated into a shorter, wrong event. A trailing ['\r']
    is stripped (CRLF peers are tolerated); any other framing noise is
    left for the protocol parser to reject. *)

type t

val of_fd : ?max_line:int -> Unix.file_descr -> t
(** Wrap a descriptor (default [max_line] 65536 bytes). The descriptor
    is owned by the caller. *)

type read =
  | Line of string  (** one complete line, newline stripped *)
  | Oversized  (** a line exceeded [max_line] and was discarded *)
  | Timeout  (** no complete line within [timeout] seconds *)
  | Eof  (** peer closed; buffered partial data (if any) is dropped *)

val read_line : t -> timeout:float -> read
(** Wait at most [timeout] seconds (0 = poll) for the next line.
    Buffered data is served without touching the descriptor. *)

val pending : t -> bool
(** Whether a complete line is already buffered (a {!read_line} with
    any timeout would return it without blocking). *)

(** {2 Unix-socket listener} *)

val listen_unix : path:string -> (Unix.file_descr, string) result
(** Bind and listen on a Unix-domain socket, replacing any stale socket
    file at [path]. Returns the listening descriptor. *)

val accept : Unix.file_descr -> timeout:float -> Unix.file_descr option
(** Accept one client with a timeout; [None] on timeout. *)
