(** Overload protection for the event loop: a bounded admission queue
    plus a p99-latency trip wire.

    The server asks {!decide} before enqueueing each arriving event.
    Past the queue bound — or past the latency threshold while the
    queue is half full — the event is shed with a [busy
    retry-after=<ms>] hint instead of growing an unbounded backlog.
    Shedding is deliberately {e pre}-journal: a shed event was never
    acknowledged, so it carries no durability obligation. *)

type t

val create : ?window:int -> max_queue:int -> p99_limit_ms:float -> unit -> t
(** [window] (default 256) is the size of the latency ring buffer the
    p99 estimate is computed over. *)

val observe : t -> float -> unit
(** Record one event's handling latency, in milliseconds. *)

val p99_ms : t -> float
(** Current 99th-percentile latency over the window; 0 when empty. *)

val mean_ms : t -> float

type decision = Admit | Shed of int  (** retry-after hint, milliseconds *)

val decide : t -> depth:int -> decision
(** [depth] is the current queue depth. The retry-after hint scales
    with the backlog: roughly the time the present queue needs to
    drain at the observed mean latency. *)

val shed_count : t -> int
(** Events shed so far (for [stats]). *)
