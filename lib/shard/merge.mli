(** Merging shard-local assignments back into one global assignment.

    Shards solve disjoint paper sets against the whole reviewer pool, so
    the only constraint a merge can break is a reviewer's global
    workload cap: each shard respected its own proportional cap, but the
    caps sum to slightly more than [delta_r] when the split rounds up.
    {!merge} therefore trims overloaded reviewers (dropping their
    lowest-scoring pairs first), lets {!Wgrap.Repair.complete} refill
    the shortened groups, and re-validates — a constraint-violating
    shard result can never leak into the merged answer. *)

val assemble :
  Wgrap.Instance.t -> Partition.t -> Wgrap.Assignment.t array -> Wgrap.Assignment.t
(** Relabel each shard-local assignment (indexed as
    [Partition.papers.(s)]) into global paper ids and union them. The
    result is {e not} yet validated — use {!merge}. *)

val merge :
  Wgrap.Instance.t ->
  Partition.t ->
  Wgrap.Assignment.t array ->
  (Wgrap.Assignment.t * int, string) result
(** [assemble], then trim every overloaded reviewer down to [delta_r]
    (shedding its lowest-scoring papers; ties on the lower paper id, so
    the trim is deterministic), repair the resulting short groups, and
    validate against the full instance. [Ok (assignment, trimmed)]
    reports how many pairs the trim dropped; [Error] carries the
    validation or repair failure — the caller treats it as a shard
    fault, never as an answer. *)
