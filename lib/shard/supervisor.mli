(** The shard supervisor: a sharded CRA solve that stays alive through
    per-shard failure.

    {!solve} partitions the papers ({!Partition}), runs one supervised
    task per shard on the context's pool — each task drives the bare
    primary link {!Wgrap.Solver.sdga_sra} on its sub-instance — then
    merges ({!Merge}) and runs a round-capped boundary {!Wgrap.Sra}
    pass over the full instance to recover cross-shard quality.

    The supervision ladder, per shard:

    + {b deadline slicing} — every attempt gets
      [min (global remaining / shards, global remaining)] so one stuck
      shard cannot starve the rest;
    + {b bounded retry} — up to [retries] re-attempts with exponential
      backoff and jitter. Backoff jitter and solver seeds come from
      {!Wgrap_util.Rng.split} streams keyed by shard and attempt, so
      the run is deterministic at any job count and every attempt
      replays the {e same} solver stream — which is what makes a
      retried or resumed attempt reproduce the uninterrupted result;
    + {b checkpoint/resume} — with [store_dir] set, each shard
      checkpoints into its own [shard-NNN/] subdirectory through the
      {!Wgrap_persist.Store} contract. A retry resumes the failed
      attempt's certified state instead of restarting, and a completed
      shard freezes its result as a blob that a [resume] run reloads
      bit-identically ([Shard_cached]) without re-solving;
    + {b graceful degradation} — a shard that exhausts its retries
      falls back to the greedy backstop ({!Wgrap.Greedy} +
      {!Wgrap.Repair}); the merged outcome surfaces as [Degraded] with
      one {!Wgrap.Summary.shard_provenance} record per shard, never a
      crash and never a silently dropped shard.

    Every shard result — injected faults included — is validated
    against its sub-instance, and the merge validates again against the
    full instance, so a constraint-violating shard answer is caught
    twice before it can reach the caller. *)

type fault =
  | Crash  (** the attempt raises immediately *)
  | Hang
      (** the attempt sleeps until its deadline (bounded for test
          practicality) and surfaces as a timeout *)
  | Invalid_result
      (** the attempt returns a constraint-violating assignment, which
          per-shard validation must reject *)

type config = {
  retries : int;  (** re-attempts after the first failure (default 2) *)
  backoff_base : float;  (** first-retry backoff seconds (default 0.05) *)
  backoff_cap : float;  (** backoff ceiling in seconds (default 1.0) *)
  boundary_rounds : int;
      (** boundary SRA rounds over the merged assignment; 0 disables
          (default 2). Round-capped and undeadlined, so the pass is
          deterministic and never worse than its input. *)
  cadence : Wgrap_persist.Store.cadence option;
      (** per-shard checkpoint cadence; [None] is the store default *)
  store_dir : string option;
      (** root checkpoint directory; [None] disables durability *)
  resume : bool;
      (** reuse certified checkpoints and frozen shard results under
          [store_dir]. The run refuses ([Infeasible]) when the stored
          manifest disagrees with the current flags or partition. *)
  refine : bool;  (** run the SRA half of each shard solve (default) *)
  inject : (shard:int -> attempt:int -> fault option) option;
      (** chaos hook, fired at attempt entry. Must be pure — it is
          called from worker domains and replayed on resume. *)
  on_shard_event : (shard:int -> Wgrap.Checkpoint.event -> unit) option;
      (** checkpoint-event observer, called on the solving domain after
          the event is journaled — test scaffolding for mid-shard kills *)
}

val default_config : config

val solve :
  ?config:config ->
  ?ctx:Wgrap.Solver.Ctx.t ->
  shards:int ->
  Wgrap.Instance.t ->
  Wgrap.Assignment.t Wgrap.Solver.outcome
  * Wgrap.Summary.shard_provenance list
(** Run the sharded solve. From [ctx]: [deadline] is the global budget
    that attempt slices are cut from, [rng] (or the seed-0 default)
    roots every split stream, [candidates] prunes each shard's gain
    matrix, [objective] selects the scoring backend (recorded in the
    resume manifest, and routing each shard's primary link like
    {!Wgrap.Solver.cra}: SDGA-led only for submodular monotone specs,
    greedy-seeded SRA otherwise), [pool] fans shards out across domains
    (sub-solves stay sequential so any job count is bit-identical), and
    [on_degrade] observes every recorded reason — on the calling
    domain, in shard order, after the shards finish. Specs whose
    parameters are shaped to the whole instance ([Blend]'s preference
    matrix) cannot be re-bound to a paper shard and fail the bind
    fast with [Invalid_argument].

    The outcome is [Complete] when every shard finished its primary
    link fault-free, [Degraded] with the collected reasons otherwise,
    and [Infeasible] only when a shard produced no assignment at all
    (backstop included), the merge could not be made valid, or a
    [resume] manifest mismatched. Never raises. *)
