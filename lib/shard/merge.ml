module Instance = Wgrap.Instance
module Assignment = Wgrap.Assignment

let assemble inst part results =
  let merged = Assignment.empty ~n_papers:(Instance.n_papers inst) in
  Array.iteri
    (fun s (a : Assignment.t) ->
      let ps = part.Partition.papers.(s) in
      Array.iteri
        (fun lp gp -> merged.Assignment.groups.(gp) <- a.Assignment.groups.(lp))
        ps)
    results;
  merged

(* Shed [excess] pairs from reviewer [r], lowest pair score first (ties:
   lower paper id). Groups shrink below delta_p here; Repair refills
   them from reviewers with spare capacity. *)
let trim inst (merged : Assignment.t) =
  let n_r = Instance.n_reviewers inst in
  let loads = Assignment.workloads merged ~n_reviewers:n_r in
  let papers_of = Array.make n_r [] in
  Array.iteri
    (fun p group ->
      List.iter (fun r -> papers_of.(r) <- p :: papers_of.(r)) group)
    merged.Assignment.groups;
  let trimmed = ref 0 in
  for r = 0 to n_r - 1 do
    let excess = loads.(r) - inst.Instance.delta_r in
    if excess > 0 then begin
      let by_score =
        List.sort
          (fun a b ->
            match
              Float.compare
                (Instance.pair_score inst ~paper:a ~reviewer:r)
                (Instance.pair_score inst ~paper:b ~reviewer:r)
            with
            | 0 -> Int.compare a b
            | c -> c)
          papers_of.(r)
      in
      List.iteri
        (fun i p ->
          if i < excess then begin
            merged.Assignment.groups.(p) <-
              List.filter (fun r' -> r' <> r) merged.Assignment.groups.(p);
            incr trimmed
          end)
        by_score
    end
  done;
  !trimmed

let merge inst part results =
  let merged = assemble inst part results in
  let trimmed = trim inst merged in
  let validated () =
    match Assignment.validate inst merged with
    | Ok () -> Ok (merged, trimmed)
    | Error msg -> Error msg
  in
  match validated () with
  | Ok _ as ok -> ok
  | Error short -> (
      (* Short groups from trimming (or from a shard that under-filled)
         get one repair pass; anything repair cannot fix is an error the
         supervisor surfaces, never silently returns. *)
      match Wgrap.Repair.complete inst merged with
      | () -> (
          match validated () with
          | Ok _ as ok -> ok
          | Error msg -> Error ("merge invalid after repair: " ^ msg))
      | exception e ->
          Error
            (Printf.sprintf "merge repair failed (%s) after: %s"
               (Wgrap.Solver.describe_exn e) short))
