(** Paper partitioning for sharded solving.

    Papers are grouped by dominant topic ({!Topics.Cluster}) and the
    topic groups are packed into balanced shards; each shard then solves
    its papers against the {e full} reviewer pool with a proportional
    share of every reviewer's workload cap. Partitioning is a pure
    function of the instance and shard count — no randomness, no clock —
    so a resumed run always reconstructs the identical partition (the
    supervisor pins it with {!fingerprint}). *)

type t = private {
  shards : int;  (** shard count actually used (empty bins compacted) *)
  of_paper : int array;  (** global paper id -> shard *)
  papers : int array array;  (** shard -> global paper ids, ascending *)
  delta_r : int array;  (** shard -> per-reviewer workload cap *)
}

val make : shards:int -> Wgrap.Instance.t -> t
(** Partition into at most [shards] shards (clamped to the paper count;
    bins left empty by the topic packing are dropped, so [t.shards] can
    be smaller than requested). Raises [Invalid_argument] when
    [shards < 1].

    Per-shard workload caps split the global [delta_r] proportionally to
    shard size while always keeping each sub-instance feasible:
    [max (ceil (P_s * delta_p / R)) (ceil (delta_r * P_s / P))]. At
    [shards = 1] this is exactly the instance's own [delta_r], and
    summed over shards it never exceeds what boundary trimming
    ({!Merge.merge}) can repair. *)

val sub_instance : Wgrap.Instance.t -> t -> int -> Wgrap.Instance.t
(** [sub_instance inst t s]: shard [s]'s papers (in [t.papers.(s)]
    order) against all reviewers, with COI pairs remapped and the
    shard's [delta_r] cap. Raises [Invalid_argument] only if the parent
    instance was already malformed. *)

val fingerprint : t -> string
(** CRC-32 over a canonical rendering of the partition — the resume
    manifest's guard against solving yesterday's shards with today's
    flags. *)
