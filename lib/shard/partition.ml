module Instance = Wgrap.Instance

type t = {
  shards : int;
  of_paper : int array;
  papers : int array array;
  delta_r : int array;
}

let ceil_div a b = (a + b - 1) / b

let make ~shards inst =
  if shards < 1 then invalid_arg "Partition.make: shards must be >= 1";
  let n_p = Instance.n_papers inst and n_r = Instance.n_reviewers inst in
  let bins = min shards n_p in
  let bin_of_paper = Topics.Cluster.partition ~bins inst.Instance.papers in
  (* Compact away bins the topic packing left empty so every shard is a
     non-empty, solvable sub-instance. *)
  let counts = Array.make bins 0 in
  Array.iter (fun b -> counts.(b) <- counts.(b) + 1) bin_of_paper;
  let remap = Array.make bins (-1) in
  let used = ref 0 in
  Array.iteri
    (fun b c ->
      if c > 0 then begin
        remap.(b) <- !used;
        incr used
      end)
    counts;
  let shards = !used in
  let of_paper = Array.map (fun b -> remap.(b)) bin_of_paper in
  let members = Array.make shards [] in
  for p = n_p - 1 downto 0 do
    members.(of_paper.(p)) <- p :: members.(of_paper.(p))
  done;
  let papers = Array.map Array.of_list members in
  let delta_r =
    Array.map
      (fun ps ->
        let p_s = Array.length ps in
        max
          (ceil_div (p_s * inst.Instance.delta_p) n_r)
          (ceil_div (inst.Instance.delta_r * p_s) n_p))
      papers
  in
  { shards; of_paper; papers; delta_r }

let sub_instance inst t s =
  let ps = t.papers.(s) in
  let local_of_global = Hashtbl.create (Array.length ps) in
  Array.iteri (fun lp p -> Hashtbl.replace local_of_global p lp) ps;
  let coi =
    List.filter_map
      (fun (p, r) ->
        match Hashtbl.find_opt local_of_global p with
        | Some lp -> Some (lp, r)
        | None -> None)
      (Instance.coi_pairs inst)
  in
  Instance.create_exn ~scoring:inst.Instance.scoring
    ?coi:(match coi with [] -> None | l -> Some l)
    ~papers:(Array.map (fun p -> inst.Instance.papers.(p)) ps)
    ~reviewers:inst.Instance.reviewers ~delta_p:inst.Instance.delta_p
    ~delta_r:t.delta_r.(s) ()

let fingerprint t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (string_of_int t.shards);
  Array.iteri
    (fun s ps ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (string_of_int t.delta_r.(s));
      Buffer.add_char buf ':';
      Array.iter
        (fun p ->
          Buffer.add_string buf (string_of_int p);
          Buffer.add_char buf ',')
        ps)
    t.papers;
  Wgrap_persist.Crc32.hex (Buffer.contents buf)
