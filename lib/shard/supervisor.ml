module Timer = Wgrap_util.Timer
module Rng = Wgrap_util.Rng
module Pool = Wgrap_par.Pool
module Store = Wgrap_persist.Store
module Blob = Wgrap_persist.Blob
module Instance = Wgrap.Instance
module Assignment = Wgrap.Assignment
module Checkpoint = Wgrap.Checkpoint
module Solver = Wgrap.Solver
module Ctx = Wgrap.Solver.Ctx
module Summary = Wgrap.Summary
module Objective = Wgrap.Objective

type fault = Crash | Hang | Invalid_result

type config = {
  retries : int;
  backoff_base : float;
  backoff_cap : float;
  boundary_rounds : int;
  cadence : Store.cadence option;
  store_dir : string option;
  resume : bool;
  refine : bool;
  inject : (shard:int -> attempt:int -> fault option) option;
  on_shard_event : (shard:int -> Checkpoint.event -> unit) option;
}

let default_config =
  {
    retries = 2;
    backoff_base = 0.05;
    backoff_cap = 1.0;
    boundary_rounds = 2;
    cadence = None;
    store_dir = None;
    resume = false;
    refine = true;
    inject = None;
    on_shard_event = None;
  }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A simulated hang: burn the attempt's budget (bounded so unbudgeted
   test runs still terminate), then surface as the timeout it is. *)
let hang_until deadline =
  let bound = 2.0 in
  let d =
    match deadline with
    | Some d -> Timer.deadline (Float.min bound (Float.max 0. (Timer.remaining d)))
    | None -> Timer.deadline bound
  in
  while not (Timer.expired d) do
    Unix.sleepf 0.01
  done;
  raise Timer.Expired

(* A deliberately constraint-violating result for the [Invalid_result]
   fault: every group is delta_p copies of reviewer 0 — duplicate
   members and a blown workload cap in one. *)
let invalid_assignment sub =
  let a = Assignment.empty ~n_papers:(Instance.n_papers sub) in
  for p = 0 to Instance.n_papers sub - 1 do
    for _ = 1 to sub.Instance.delta_p do
      Assignment.add a ~paper:p ~reviewer:0
    done
  done;
  a

let result_blob_of a = String.concat "\n" (Assignment.to_lines a)

let assignment_of_blob sub payload =
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' payload) in
  match Assignment.of_lines ~n_papers:(Instance.n_papers sub) lines with
  | Ok a -> ( match Assignment.validate sub a with Ok () -> Some a | Error _ -> None)
  | Error _ -> None

let manifest_text ~candidates ~objective cfg (part : Partition.t) =
  String.concat "\n"
    [
      "shards=" ^ string_of_int part.Partition.shards;
      "refine=" ^ string_of_bool cfg.refine;
      "boundary_rounds=" ^ string_of_int cfg.boundary_rounds;
      "candidates=" ^ string_of_int candidates;
      "objective=" ^ Objective.describe objective;
      "partition=" ^ Partition.fingerprint part;
    ]

(* The manifest pins a checkpoint directory to one (partition, flags)
   combination: resuming yesterday's shards with today's flags would
   silently change what the cached results mean, so mismatch is
   fail-stop. *)
let manifest_gate ~candidates ~objective cfg part =
  match cfg.store_dir with
  | None -> Ok ()
  | Some dir ->
      let path = Filename.concat dir "manifest.blob" in
      let text = manifest_text ~candidates ~objective cfg part in
      if cfg.resume && Sys.file_exists path then
        match Blob.read path with
        (* Blob.write newline-terminates the payload; read returns it
           with that final newline attached. *)
        | Ok stored when String.equal stored (text ^ "\n") -> Ok ()
        | Ok stored ->
            Error
              (Printf.sprintf
                 "checkpoint manifest mismatch in %s: stored run used [%s] \
                  but this run is [%s]; re-run without --resume or point the \
                  checkpoint directory elsewhere"
                 dir
                 (String.concat "; "
                    (List.filter
                       (fun s -> not (String.equal s ""))
                       (String.split_on_char '\n' stored)))
                 (String.concat "; " (String.split_on_char '\n' text)))
        | Error e ->
            Error
              (Printf.sprintf "unreadable checkpoint manifest %s: %s" path
                 (Blob.error_message e))
      else
        match
          mkdir_p dir;
          Blob.write ~path text
        with
        | () -> Ok ()
        | exception e -> Error (Solver.describe_exn e)

(* Everything one shard task reports back to the coordinator. *)
type shard_report = {
  result : Assignment.t option;
  rev_reasons : Solver.reason list;  (** newest first *)
  prov : Summary.shard_provenance;
}

let run_shard ~cfg ~ctx ~inst ~(part : Partition.t) ~slice ~solve_streams
    ~backoff_streams s =
  let t0 = Timer.now () in
  let link = Printf.sprintf "shard-%d" s in
  let rev_reasons = ref [] in
  let push r = rev_reasons := r :: !rev_reasons in
  let report ?result ~attempts status =
    {
      result;
      rev_reasons = !rev_reasons;
      prov =
        {
          Summary.shard = s;
          shard_papers = Array.length part.Partition.papers.(s);
          attempts;
          shard_status = status;
          shard_elapsed = Timer.now () -. t0;
        };
    }
  in
  match Partition.sub_instance inst part s with
  | exception e ->
      push (Solver.Fault { link; error = Solver.describe_exn e });
      report ~attempts:0 (Summary.Shard_fallback "sub-instance construction failed")
  | sub -> (
      let dir = Option.map (fun d -> Filename.concat d (Printf.sprintf "shard-%03d" s)) cfg.store_dir in
      let result_path = Option.map (fun d -> Filename.concat d "result.blob") dir in
      let frozen =
        if not cfg.resume then None
        else
          Option.bind result_path (fun p ->
              if Sys.file_exists p then
                match Blob.read p with
                | Ok payload -> assignment_of_blob sub payload
                | Error _ -> None
              else None)
      in
      match frozen with
      | Some a ->
          (* A completed shard from the interrupted run: reuse it
             verbatim — this is what makes resume bit-identical. *)
          report ~result:a ~attempts:0 Summary.Shard_cached
      | None ->
          let freeze a =
            match
              Option.iter (fun p -> Blob.write ~path:p (result_blob_of a)) result_path
            with
            | () -> ()
            | exception e ->
                (* A result we cannot freeze is still a result; record
                   the durability loss instead of failing the shard. *)
                push (Solver.Fault { link; error = "result checkpoint lost: " ^ Solver.describe_exn e })
          in
          let solve_words = Rng.words solve_streams.(s) in
          let backoffs = Rng.split backoff_streams.(s) (cfg.retries + 1) in
          (* The shard's gain matrix survives retries: values are pure,
             so reuse is safe and warm rows make a retry cheap. Built
             over the objective's view (the ctx.gains contract): a
             transforming backend scores smoothed vectors, not raw
             ones. *)
          let gains =
            Wgrap.Gain_matrix.create ~candidates:ctx.Ctx.candidates
              (Objective.view (Objective.bind ctx.Ctx.objective sub))
          in
          (* Chain routing mirrors Solver.cra: SDGA may lead only when
             the objective keeps its Lemma 4 guarantee. *)
          let primary =
            if
              Objective.submodular ctx.Ctx.objective
              && Objective.monotone ctx.Ctx.objective
            then Solver.sdga_sra
            else Solver.greedy_sra
          in
          let backoff_before k =
            if k > 0 then begin
              let jitter = 0.5 +. Rng.uniform backoffs.(k) in
              let pause =
                Float.min cfg.backoff_cap
                  (cfg.backoff_base *. (2. ** float_of_int (k - 1)))
                *. jitter
              in
              let pause =
                match ctx.Ctx.deadline with
                | Some g -> Float.min pause (Float.max 0. (Timer.remaining g))
                | None -> pause
              in
              if pause > 0. then Unix.sleepf pause
            end
          in
          let attempt_deadline () =
            match ctx.Ctx.deadline with
            | None -> None
            | Some g ->
                let rem = Float.max 0. (Timer.remaining g) in
                Some (Timer.deadline (Float.min rem slice))
          in
          let real_attempt ~k ~deadline =
            let resume_state =
              match dir with
              | Some d when cfg.resume || k > 0 -> (
                  match Store.load ~dir:d sub with
                  | Ok st -> Some st
                  | Error Store.No_checkpoint -> None
                  | Error (Store.Invalid msg) ->
                      push (Solver.Stale_checkpoint { error = msg });
                      None)
              | _ -> None
            in
            let store =
              Option.map
                (fun d ->
                  Store.open_ ?cadence:cfg.cadence
                    ~fresh:(Option.is_none resume_state)
                    ~dir:d ())
                dir
            in
            let sink =
              let stored = Option.map Store.sink store in
              match cfg.on_shard_event with
              | None -> stored
              | Some f ->
                  let observe e = f ~shard:s e in
                  Some
                    (match stored with
                    | None -> { Checkpoint.on_event = observe; offer = (fun _ -> ()) }
                    | Some b ->
                        {
                          Checkpoint.on_event =
                            (fun e ->
                              b.Checkpoint.on_event e;
                              observe e);
                          offer = b.Checkpoint.offer;
                        })
            in
            let sctx =
              {
                Ctx.default with
                Ctx.deadline;
                (* Every attempt replays the same stream: retry after a
                   mid-attempt failure resumes the checkpointed rounds
                   bit-exactly, and a fresh retry reproduces the
                   original attempt. *)
                rng = Some (Rng.of_words solve_words);
                gains = Some gains;
                candidates = ctx.Ctx.candidates;
                objective = ctx.Ctx.objective;
                checkpoint = sink;
                resume_from = Option.map Result.ok resume_state;
                pool = None;
              }
            in
            Fun.protect
              ~finally:(fun () -> Option.iter Store.close store)
              (fun () -> primary ~refine:cfg.refine ~ctx:sctx sub)
          in
          let rec attempt k =
            if k > cfg.retries then None
            else begin
              backoff_before k;
              let deadline = attempt_deadline () in
              match
                match Option.bind cfg.inject (fun f -> f ~shard:s ~attempt:k) with
                | Some Crash -> failwith "injected shard fault: crash"
                | Some Hang -> hang_until deadline
                | Some Invalid_result -> invalid_assignment sub
                | None -> real_attempt ~k ~deadline
              with
              | a -> (
                  match Assignment.validate sub a with
                  | Ok () -> Some (a, k + 1)
                  | Error msg ->
                      push (Solver.Fault { link; error = "invalid shard result: " ^ msg });
                      attempt (k + 1))
              | exception Wgrap_util.Timer.Expired ->
                  push (Solver.Timeout { link });
                  attempt (k + 1)
              | exception e ->
                  push (Solver.Fault { link; error = Solver.describe_exn e });
                  attempt (k + 1)
            end
          in
          (match attempt 0 with
          | Some (a, attempts) ->
              freeze a;
              let status =
                match !rev_reasons with
                | [] -> Summary.Shard_complete
                | rs ->
                    Summary.Shard_degraded
                      (List.rev_map (Format.asprintf "%a" Solver.pp_reason) rs)
              in
              report ~result:a ~attempts status
          | None -> (
              (* Retries exhausted: the greedy backstop, undeadlined —
                 a weak answer beats a dropped shard. *)
              let last =
                match !rev_reasons with
                | r :: _ -> Format.asprintf "%a" Solver.pp_reason r
                | [] -> "no attempt ran"
              in
              match
                let a =
                  Wgrap.Greedy.solve
                    ~ctx:
                      {
                        Ctx.default with
                        Ctx.candidates = ctx.Ctx.candidates;
                        objective = ctx.Ctx.objective;
                      }
                    sub
                in
                Wgrap.Repair.complete sub a;
                a
              with
              | a -> (
                  match Assignment.validate sub a with
                  | Ok () ->
                      freeze a;
                      report ~result:a ~attempts:(cfg.retries + 1)
                        (Summary.Shard_fallback last)
                  | Error msg ->
                      push (Solver.Fault { link; error = "backstop invalid: " ^ msg });
                      report ~attempts:(cfg.retries + 1) (Summary.Shard_fallback last))
              | exception e ->
                  push (Solver.Fault { link; error = Solver.describe_exn e });
                  report ~attempts:(cfg.retries + 1) (Summary.Shard_fallback last))))

let solve ?(config = default_config) ?(ctx = Ctx.default) ~shards inst =
  let cfg = config in
  let part = Partition.make ~shards inst in
  match
    manifest_gate ~candidates:ctx.Ctx.candidates
      ~objective:ctx.Ctx.objective cfg part
  with
  | Error msg -> (Solver.Infeasible msg, [])
  | Ok () ->
      (* Root the split streams in a copy: the caller's generator must
         not advance (determinism at any call site), and both runs of a
         kill/resume pair must derive identical streams. *)
      let base = Rng.copy (Ctx.rng_or ~seed:0 ctx) in
      let solve_streams = Rng.split base part.Partition.shards in
      let backoff_streams = Rng.split base part.Partition.shards in
      let boundary_rng = (Rng.split base 1).(0) in
      let slice =
        match ctx.Ctx.deadline with
        | None -> Float.infinity
        | Some d -> Float.max 0. (Timer.remaining d) /. float_of_int part.Partition.shards
      in
      let pool = match ctx.Ctx.pool with Some p -> p | None -> Pool.sequential in
      let reports =
        Pool.run pool ~n:part.Partition.shards
          (run_shard ~cfg ~ctx ~inst ~part ~slice ~solve_streams ~backoff_streams)
      in
      (* Observer contract: reasons surface on the calling domain, in
         shard order, after the fan-out — like Solver.jra_batch. *)
      let boundary_reasons = ref [] in
      let reasons_now () =
        List.concat_map (fun r -> List.rev r.rev_reasons) (Array.to_list reports)
        @ List.rev !boundary_reasons
      in
      let announce r =
        let link, detail =
          match r with
          | Solver.Timeout { link } -> (link, "deadline expired")
          | Solver.Fault { link; error } -> (link, error)
          | Solver.Stale_checkpoint { error } -> ("checkpoint", error)
        in
        Ctx.notify_degrade ctx ~link ~detail
      in
      List.iter announce (reasons_now ());
      let provenance = Array.to_list (Array.map (fun r -> r.prov) reports) in
      let missing =
        Array.to_list reports
        |> List.filter (fun r -> Option.is_none r.result)
        |> List.map (fun r -> r.prov.Summary.shard)
      in
      if missing <> [] then
        ( Solver.Infeasible
            (Printf.sprintf "shard(s) %s produced no assignment even via the backstop"
               (String.concat ", " (List.map string_of_int missing))),
          provenance )
      else
        let results = Array.map (fun r -> Option.get r.result) reports in
        match Merge.merge inst part results with
        | Error msg -> (Solver.Infeasible ("shard merge failed: " ^ msg), provenance)
        | Ok (merged, _trimmed) ->
            let final =
              if cfg.boundary_rounds <= 0 then merged
              else
                (* Boundary repair: a short, round-capped, undeadlined
                   SRA pass over the full instance knits shard seams
                   back together. Deterministic (no clock in the exit
                   condition) and never worse than its input. *)
                let params =
                  {
                    Wgrap.Sra.default_params with
                    Wgrap.Sra.max_rounds = cfg.boundary_rounds;
                  }
                in
                match
                  Wgrap.Sra.refine ~params
                    ~ctx:
                      {
                        Ctx.default with
                        Ctx.rng = Some boundary_rng;
                        candidates = ctx.Ctx.candidates;
                        objective = ctx.Ctx.objective;
                      }
                    inst merged
                with
                | a -> a
                | exception e ->
                    let r =
                      Solver.Fault
                        { link = "boundary-sra"; error = Solver.describe_exn e }
                    in
                    boundary_reasons := r :: !boundary_reasons;
                    announce r;
                    merged
            in
            (match Assignment.validate inst final with
            | Error msg ->
                (Solver.Infeasible ("merged assignment invalid: " ^ msg), provenance)
            | Ok () -> (
                match reasons_now () with
                | [] -> (Solver.Complete final, provenance)
                | rs -> (Solver.Degraded (final, rs), provenance)))
