let forbidden = neg_infinity

(* Large-but-finite penalty standing in for forbidden cells inside the
   potentials computation; infinities would poison the dual updates. *)
let big = 1e15

let check_shape cost =
  let n = Array.length cost in
  if n = 0 then invalid_arg "Hungarian: empty matrix";
  let m = Array.length cost.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> m then invalid_arg "Hungarian: ragged matrix")
    cost;
  if n > m then invalid_arg "Hungarian: more rows than columns";
  (n, m)

(* Shortest-augmenting-path assignment with dual potentials; 1-based
   internal indexing as in the classic presentation. Cells holding [big]
   are treated as (almost) unusable. *)
let minimize ?deadline cost =
  let n, m = check_shape cost in
  let u = Array.make (n + 1) 0. in
  let v = Array.make (m + 1) 0. in
  let p = Array.make (m + 1) 0 in
  let way = Array.make (m + 1) 0 in
  for i = 1 to n do
    Wgrap_util.Timer.check_opt deadline;
    p.(0) <- i;
    let j0 = ref 0 in
    let minv = Array.make (m + 1) infinity in
    let used = Array.make (m + 1) false in
    let continue = ref true in
    while !continue do
      used.(!j0) <- true;
      let i0 = p.(!j0) in
      let delta = ref infinity in
      let j1 = ref 0 in
      for j = 1 to m do
        if not used.(j) then begin
          let cur = cost.(i0 - 1).(j - 1) -. u.(i0) -. v.(j) in
          if cur < minv.(j) then begin
            minv.(j) <- cur;
            way.(j) <- !j0
          end;
          if minv.(j) < !delta then begin
            delta := minv.(j);
            j1 := j
          end
        end
      done;
      for j = 0 to m do
        if used.(j) then begin
          u.(p.(j)) <- u.(p.(j)) +. !delta;
          v.(j) <- v.(j) -. !delta
        end
        else minv.(j) <- minv.(j) -. !delta
      done;
      j0 := !j1;
      if p.(!j0) = 0 then continue := false
    done;
    let j0 = ref !j0 in
    while !j0 <> 0 do
      let j1 = way.(!j0) in
      p.(!j0) <- p.(j1);
      j0 := j1
    done
  done;
  let assignment = Array.make n (-1) in
  for j = 1 to m do
    if p.(j) > 0 then assignment.(p.(j) - 1) <- j - 1
  done;
  let total = ref 0. in
  Array.iteri (fun i j -> total := !total +. cost.(i).(j)) assignment;
  (assignment, !total)

let maximize ?deadline score =
  let n, m = check_shape score in
  (* Negate into a minimization; map forbidden scores to [big]. *)
  let cost =
    Array.init n (fun i ->
        Array.init m (fun j ->
            let s = score.(i).(j) in
            if s = forbidden then big else -.s))
  in
  let assignment, _ = minimize ?deadline cost in
  let total = ref 0. in
  Array.iteri
    (fun i j ->
      if score.(i).(j) = forbidden then failwith "Hungarian: infeasible"
      else total := !total +. score.(i).(j))
    assignment;
  (assignment, !total)
