(** Min-cost max-flow with successive shortest paths (SPFA label
    correcting, float costs, integer capacities).

    This is the second linear-assignment backend the paper names
    ("Minimum-cost flow assignment [3]") and the workhorse behind the
    capacitated per-stage assignment of SDGA (reviewer capacity
    ceil(delta_r/delta_p)) and the per-pair ILP/ARAP baseline, which is a
    transportation problem. *)

type t
(** Mutable flow network. *)

val create : int -> t
(** [create n] is an empty network over nodes [0 .. n-1]. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> cost:float -> unit
(** Add a directed edge (and its zero-capacity residual twin). *)

val min_cost_flow :
  ?deadline:Wgrap_util.Timer.deadline -> t -> source:int -> sink:int -> int * float
(** Push as much flow as possible from [source] to [sink] along successive
    cheapest paths. Returns [(flow, cost)]. The network retains the flow,
    so [edge_flows] can be inspected afterwards. When [deadline] expires,
    raises [Wgrap_util.Timer.Expired] (checked before each augmenting
    path); the network keeps the flow pushed so far. *)

val edge_flows : t -> (int * int * int) list
(** [(src, dst, flow)] for every forward edge with positive flow, in
    insertion order. *)

(** {1 Transportation-problem facade} *)

val transportation :
  ?deadline:Wgrap_util.Timer.deadline ->
  row_supply:int array ->
  col_capacity:int array ->
  float array array ->
  int list array
(** [transportation ~row_supply ~col_capacity score] maximizes
    [sum score.(i).(j)] over integral shipments where row [i] ships exactly
    [row_supply.(i)] units and column [j] receives at most
    [col_capacity.(j)]. The score matrix is the final positional
    argument so that [?deadline] stays erasable.

    Each (row, column) cell may be used at most once, which matches
    reviewer assignment: a reviewer reviews a given paper at most once.
    Cells equal to {!Hungarian.forbidden} are excluded entirely (conflicts
    of interest). Returns, for each row, the list of columns it was
    matched to.

    Raises [Failure "Mcmf: infeasible"] when supplies cannot be met. *)
