(** Dense rectangular linear assignment (Kuhn-Munkres, Jonker-Volgenant
    shortest-augmenting-path formulation, O(n^2 m)).

    This is the per-stage solver the paper's SDGA algorithm (Section 4.2)
    relies on: "we can apply a classic linear assignment algorithm (e.g.,
    Hungarian algorithm)". *)

val minimize :
  ?deadline:Wgrap_util.Timer.deadline -> float array array -> int array * float
(** [minimize cost] assigns each row of the [n*m] matrix ([n <= m]) to a
    distinct column so that the total cost is minimal. Returns
    [(assignment, total)] where [assignment.(i)] is the column of row [i].
    Raises [Invalid_argument] if [n > m] or the matrix is ragged. A
    partial matching cannot be returned meaningfully, so when [deadline]
    expires the solver raises [Wgrap_util.Timer.Expired] (checked once
    per augmenting row); callers treat it as "this stage was cut". *)

val maximize :
  ?deadline:Wgrap_util.Timer.deadline -> float array array -> int array * float
(** Same but maximizing the total score. *)

val forbidden : float
(** Sentinel score for pairs that must not be matched (conflicts of
    interest). [maximize] never selects a [forbidden] cell unless the
    instance is otherwise infeasible, in which case it raises
    [Failure "Hungarian: infeasible"]. *)
