(* Tiny growable-array helper local to this module. *)
module Buffer_dyn = struct
  type 'a t = { mutable data : 'a array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let push b x =
    if b.len = Array.length b.data then begin
      let cap = max 16 (2 * Array.length b.data) in
      let data = Array.make cap x in
      Array.blit b.data 0 data 0 b.len;
      b.data <- data
    end;
    b.data.(b.len) <- x;
    b.len <- b.len + 1

  let get b i = b.data.(i)
  let set b i x = b.data.(i) <- x
  let length b = b.len
end

type t = {
  n : int;
  (* Edge-list representation with paired residuals: edge 2k is the forward
     edge, 2k+1 its residual. *)
  head : int array; (* node -> first edge index or -1 *)
  next : int Buffer_dyn.t;
  dst : int Buffer_dyn.t;
  cap : int Buffer_dyn.t;
  cost : float Buffer_dyn.t;
  mutable forward : (int * int) list; (* (edge index, src), reverse insertion order *)
}

let create n =
  {
    n;
    head = Array.make n (-1);
    next = Buffer_dyn.create ();
    dst = Buffer_dyn.create ();
    cap = Buffer_dyn.create ();
    cost = Buffer_dyn.create ();
    forward = [];
  }

let add_half t ~src ~dst ~cap ~cost =
  Buffer_dyn.push t.next t.head.(src);
  Buffer_dyn.push t.dst dst;
  Buffer_dyn.push t.cap cap;
  Buffer_dyn.push t.cost cost;
  t.head.(src) <- Buffer_dyn.length t.dst - 1

let add_edge t ~src ~dst ~cap ~cost =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Mcmf.add_edge: node out of range";
  if cap < 0 then invalid_arg "Mcmf.add_edge: negative capacity";
  let idx = Buffer_dyn.length t.dst in
  add_half t ~src ~dst ~cap ~cost;
  add_half t ~src:dst ~dst:src ~cap:0 ~cost:(-.cost);
  t.forward <- (idx, src) :: t.forward

(* SPFA (queue-based Bellman-Ford): used once to initialize the Johnson
   potentials, since the original costs may be negative (they are the
   negated scores of a maximization). *)
let spfa t ~source ~dist =
  Array.fill dist 0 t.n infinity;
  let in_queue = Array.make t.n false in
  dist.(source) <- 0.;
  let q = Queue.create () in
  Queue.add source q;
  in_queue.(source) <- true;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    in_queue.(u) <- false;
    let e = ref t.head.(u) in
    while !e >= 0 do
      let edge = !e in
      if Buffer_dyn.get t.cap edge > 0 then begin
        let v = Buffer_dyn.get t.dst edge in
        let nd = dist.(u) +. Buffer_dyn.get t.cost edge in
        if nd < dist.(v) -. 1e-12 then begin
          dist.(v) <- nd;
          if not in_queue.(v) then begin
            Queue.add v q;
            in_queue.(v) <- true
          end
        end
      end;
      e := Buffer_dyn.get t.next edge
    done
  done

(* Dijkstra over reduced costs w + pot(u) - pot(v), which the potential
   invariant keeps non-negative on residual edges; lazy-deletion binary
   heap. *)
let dijkstra t ~source ~sink ~pot ~dist ~prev_edge =
  Array.fill dist 0 t.n infinity;
  Array.fill prev_edge 0 t.n (-1);
  dist.(source) <- 0.;
  let heap =
    Wgrap_util.Heap.create ~capacity:(2 * t.n)
      ~cmp:(fun (a, _) (b, _) -> Float.compare b a)
      ()
  in
  Wgrap_util.Heap.push heap (0., source);
  let finished = Array.make t.n false in
  let continue = ref true in
  while !continue do
    match Wgrap_util.Heap.pop heap with
    | None -> continue := false
    | Some (d, u) ->
        if not finished.(u) then begin
          finished.(u) <- true;
          if u = sink then continue := false
          else begin
            ignore d;
            let e = ref t.head.(u) in
            while !e >= 0 do
              let edge = !e in
              if Buffer_dyn.get t.cap edge > 0 then begin
                let v = Buffer_dyn.get t.dst edge in
                if not finished.(v) then begin
                  let w =
                    Buffer_dyn.get t.cost edge +. pot.(u) -. pot.(v)
                  in
                  (* Guard against float drift producing tiny negatives. *)
                  let w = if w < 0. then 0. else w in
                  let nd = dist.(u) +. w in
                  if nd < dist.(v) -. 1e-15 then begin
                    dist.(v) <- nd;
                    prev_edge.(v) <- edge;
                    Wgrap_util.Heap.push heap (nd, v)
                  end
                end
              end;
              e := Buffer_dyn.get t.next edge
            done
          end
        end
  done;
  dist.(sink) < infinity

(* Recover the source of an edge: the residual twin's destination. *)
let edge_src t edge = Buffer_dyn.get t.dst (edge lxor 1)

let min_cost_flow ?deadline t ~source ~sink =
  let dist = Array.make t.n infinity in
  let prev_edge = Array.make t.n (-1) in
  let pot = Array.make t.n 0. in
  (* Initial potentials: true distances under the (possibly negative)
     original costs. Unreachable nodes keep potential 0; they stay
     unreachable in the residual graph as long as no flow reaches them,
     so their reduced costs are never consulted. *)
  spfa t ~source ~dist;
  Array.iteri (fun v d -> if d < infinity then pot.(v) <- d) dist;
  let flow = ref 0 and cost = ref 0. in
  while
    Wgrap_util.Timer.check_opt deadline;
    dijkstra t ~source ~sink ~pot ~dist ~prev_edge
  do
    (* Fold the new distances into the potentials, capped at the sink's
       distance: Dijkstra exits early at the sink, so labels beyond it
       may not be final — the capped update is the standard fix that
       keeps reduced costs non-negative for every future path. *)
    let d_sink = dist.(sink) in
    for v = 0 to t.n - 1 do
      pot.(v) <- pot.(v) +. Float.min dist.(v) d_sink
    done;
    (* Bottleneck along the path. *)
    let push = ref max_int in
    let v = ref sink in
    while !v <> source do
      let e = prev_edge.(!v) in
      push := min !push (Buffer_dyn.get t.cap e);
      v := edge_src t e
    done;
    let v = ref sink in
    while !v <> source do
      let e = prev_edge.(!v) in
      Buffer_dyn.set t.cap e (Buffer_dyn.get t.cap e - !push);
      Buffer_dyn.set t.cap (e lxor 1) (Buffer_dyn.get t.cap (e lxor 1) + !push);
      cost := !cost +. (float_of_int !push *. Buffer_dyn.get t.cost e);
      v := edge_src t e
    done;
    flow := !flow + !push
  done;
  (!flow, !cost)

let edge_flows t =
  List.rev_map
    (fun (edge, src) ->
      let sent = Buffer_dyn.get t.cap (edge lxor 1) in
      (src, Buffer_dyn.get t.dst edge, sent))
    t.forward
  |> List.filter (fun (_, _, sent) -> sent > 0)

let transportation ?deadline ~row_supply ~col_capacity score =
  let rows = Array.length score in
  if rows = 0 then [||]
  else begin
    let cols = Array.length score.(0) in
    if Array.length row_supply <> rows || Array.length col_capacity <> cols then
      invalid_arg "Mcmf.transportation: shape mismatch";
    (* Node layout: 0 = source, 1..rows = rows, rows+1..rows+cols = cols,
       last = sink. *)
    let source = 0 and sink = rows + cols + 1 in
    let t = create (rows + cols + 2) in
    let row_node i = 1 + i and col_node j = 1 + rows + j in
    Array.iteri
      (fun i supply -> add_edge t ~src:source ~dst:(row_node i) ~cap:supply ~cost:0.)
      row_supply;
    Array.iteri
      (fun j capacity -> add_edge t ~src:(col_node j) ~dst:sink ~cap:capacity ~cost:0.)
      col_capacity;
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        let s = score.(i).(j) in
        if s <> Hungarian.forbidden then
          add_edge t ~src:(row_node i) ~dst:(col_node j) ~cap:1 ~cost:(-.s)
      done
    done;
    let flow, _ = min_cost_flow ?deadline t ~source ~sink in
    let demand = Array.fold_left ( + ) 0 row_supply in
    if flow < demand then failwith "Mcmf: infeasible";
    let result = Array.make rows [] in
    List.iter
      (fun (src, dst, sent) ->
        if src >= 1 && src <= rows && dst > rows && dst < sink && sent > 0 then begin
          let i = src - 1 and j = dst - rows - 1 in
          result.(i) <- j :: result.(i)
        end)
      (edge_flows t);
    Array.map List.rev result
  end
