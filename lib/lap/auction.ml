let maximize score =
  let n = Array.length score in
  if n = 0 then invalid_arg "Auction: empty matrix";
  let m = Array.length score.(0) in
  Array.iter
    (fun row -> if Array.length row <> m then invalid_arg "Auction: ragged matrix")
    score;
  if n > m then invalid_arg "Auction: more rows than columns";
  let allowed i j = score.(i).(j) <> Hungarian.forbidden in
  (* Value scale drives the epsilon schedule. *)
  let scale = ref 1. in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      if allowed i j then scale := Float.max !scale (Float.abs score.(i).(j))
    done
  done;
  let prices = Array.make m 0. in
  let owner = Array.make m (-1) in
  let assigned = Array.make n (-1) in
  (* The optimality gap of a completed auction round is n * eps; stop
     scaling once that is negligible at the problem's magnitude. *)
  let eps_final = 1e-9 *. !scale /. float_of_int n in
  let run_phase eps =
    Array.fill owner 0 m (-1);
    Array.fill assigned 0 n (-1);
    let queue = Queue.create () in
    for i = 0 to n - 1 do
      Queue.add i queue
    done;
    (* Feasible auctions terminate; an infeasible sub-matching (rows
       fighting over too few allowed columns) would bid forever, so cap
       the bid count generously and fail past it. *)
    let bids = ref 0 in
    let bid_limit = 10_000 * n * m in
    while not (Queue.is_empty queue) do
      incr bids;
      if !bids > bid_limit then failwith "Auction: infeasible";
      let i = Queue.take queue in
      (* Best and second-best net value over allowed objects. *)
      let best_j = ref (-1) and best_v = ref neg_infinity in
      let second_v = ref neg_infinity in
      for j = 0 to m - 1 do
        if allowed i j then begin
          let v = score.(i).(j) -. prices.(j) in
          if v > !best_v then begin
            second_v := !best_v;
            best_v := v;
            best_j := j
          end
          else if v > !second_v then second_v := v
        end
      done;
      if !best_j < 0 then failwith "Auction: infeasible";
      let j = !best_j in
      let increment =
        if Float.equal !second_v neg_infinity then eps else !best_v -. !second_v +. eps
      in
      prices.(j) <- prices.(j) +. increment;
      (match owner.(j) with
      | -1 -> ()
      | previous ->
          assigned.(previous) <- -1;
          Queue.add previous queue);
      owner.(j) <- i;
      assigned.(i) <- j
    done
  in
  (* A single phase at the final epsilon: epsilon-scaling with retained
     prices is unsound for rectangular problems (objects left unassigned
     keep stale high prices, breaking complementary slackness), and the
     matrices this backend sees are small enough that scaling buys
     nothing. *)
  run_phase eps_final;
  let total = ref 0. in
  Array.iteri
    (fun i j ->
      if not (allowed i j) then failwith "Auction: infeasible"
      else total := !total +. score.(i).(j))
    assigned;
  (Array.copy assigned, !total)
