#!/usr/bin/env bash
# Chaos soak for the sharded supervisor (PR 8).
#
# Two xl-preset runs with the full shard-fault chaos family enabled
# (crash / hang / invalid-result, injected from the deterministic
# split-stream plan):
#   A. an uninterrupted run — must exit 0 with a Complete-or-Degraded
#      outcome and a valid assignment;
#   B. a checkpointed run SIGKILLed mid-solve, then resumed with
#      --resume — the resumed run must also exit 0, and its merged
#      assignment must be byte-identical to run A's.
#
# Used by CI (see .github/workflows/ci.yml) and runnable locally:
#   dune build && scripts/shard_soak.sh
set -euo pipefail

WGRAP=${WGRAP:-_build/default/bin/wgrap_cli.exe}
if [ ! -x "$WGRAP" ]; then
  echo "shard_soak: $WGRAP not built (run dune build first)" >&2
  exit 1
fi

PRESET=${PRESET:-xl}
SHARDS=${SHARDS:-4}
SEED=${SEED:-11}
# seconds before the SIGKILL; mid-solve for the xl preset on CI hardware
KILL_AFTER=${KILL_AFTER:-8}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

COMMON=(assign --preset "$PRESET" --shards "$SHARDS" --seed "$SEED"
  --candidates 16 --no-refine --chaos-shards all)

echo "== run A: uninterrupted chaos run =="
"$WGRAP" "${COMMON[@]}" --out "$WORK/a.tsv" | tee "$WORK/a.log"

if ! grep -Eq '^solved in .* \((complete|degraded),' "$WORK/a.log"; then
  echo "shard_soak: FAIL — run A neither complete nor degraded" >&2
  exit 1
fi
if [ ! -s "$WORK/a.tsv" ]; then
  echo "shard_soak: FAIL — run A wrote no assignment" >&2
  exit 1
fi

echo "== run B: checkpointed chaos run, SIGKILL after ${KILL_AFTER}s =="
"$WGRAP" "${COMMON[@]}" \
  --checkpoint-dir "$WORK/ckpt" --checkpoint-every 1r \
  --out "$WORK/b.tsv" >"$WORK/b.log" 2>&1 &
PID=$!
sleep "$KILL_AFTER"
if kill -0 "$PID" 2>/dev/null; then
  echo "== SIGKILL pid $PID mid-solve =="
  kill -KILL "$PID" 2>/dev/null || true
else
  echo "== run B finished before the kill window — resume must still work =="
fi
wait "$PID" 2>/dev/null || true

echo "== run B: resume =="
rm -f "$WORK/b.tsv"
"$WGRAP" "${COMMON[@]}" \
  --checkpoint-dir "$WORK/ckpt" --checkpoint-every 1r --resume \
  --out "$WORK/b.tsv" | tee "$WORK/resume.log"

if ! grep -Eq '^solved in .* \((complete|degraded),' "$WORK/resume.log"; then
  echo "shard_soak: FAIL — resumed run neither complete nor degraded" >&2
  exit 1
fi

echo "== compare =="
if ! cmp "$WORK/a.tsv" "$WORK/b.tsv"; then
  echo "shard_soak: FAIL — resumed assignment differs from uninterrupted run" >&2
  exit 1
fi

echo "shard_soak: OK ($(wc -l <"$WORK/a.tsv") papers, killed+resumed run bit-identical)"
