#!/usr/bin/env bash
# Kill-and-resume smoke test for the crash-safe checkpointing layer.
#
# Starts a checkpointed `wgrap assign` run, SIGKILLs it as soon as the
# journal has recorded an incumbent (i.e. mid-refinement whenever the
# instance is big enough to still be running), then resumes from the
# same checkpoint directory and asserts:
#   1. the resumed run exits 0,
#   2. the final journaled incumbent is >= the incumbent at kill time,
#   3. the resumed run wrote a non-empty assignment.
#
# Used by CI (see .github/workflows/ci.yml) and runnable locally:
#   dune build && scripts/kill_resume_smoke.sh
set -euo pipefail

WGRAP=${WGRAP:-_build/default/bin/wgrap_cli.exe}
if [ ! -x "$WGRAP" ]; then
  echo "kill_resume_smoke: $WGRAP not built (run dune build first)" >&2
  exit 1
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
CKPT="$WORK/ckpt"

echo "== generate corpus =="
"$WGRAP" generate --seed 7 --scale 1.0 \
  --authors "$WORK/authors.tsv" --papers "$WORK/papers.tsv"

echo "== start checkpointed run =="
"$WGRAP" assign --seed 7 \
  --authors "$WORK/authors.tsv" --papers "$WORK/papers.tsv" \
  --checkpoint-dir "$CKPT" --checkpoint-every 1r \
  --out "$WORK/assignment.tsv" >"$WORK/first.log" 2>&1 &
PID=$!

# Wait (max ~10 s) for the journal to record an incumbent, then kill.
for _ in $(seq 1 200); do
  if ! kill -0 "$PID" 2>/dev/null; then
    break # finished before we could kill it — resume still must work
  fi
  if "$WGRAP" checkpoint --checkpoint-dir "$CKPT" 2>/dev/null \
      | grep -q 'last incumbent'; then
    echo "== SIGKILL pid $PID mid-refinement =="
    kill -KILL "$PID" 2>/dev/null || true
    break
  fi
  sleep 0.05
done
wait "$PID" 2>/dev/null || true

echo "== checkpoint state at kill time =="
"$WGRAP" checkpoint --checkpoint-dir "$CKPT" || true
BEFORE=$("$WGRAP" checkpoint --checkpoint-dir "$CKPT" 2>/dev/null \
  | sed -n 's/^journal: last incumbent //p')
BEFORE=${BEFORE:-0}

echo "== resume =="
rm -f "$WORK/assignment.tsv"
"$WGRAP" assign --seed 7 \
  --authors "$WORK/authors.tsv" --papers "$WORK/papers.tsv" \
  --checkpoint-dir "$CKPT" --checkpoint-every 1r --resume \
  --out "$WORK/assignment.tsv"

echo "== checkpoint state after resume =="
"$WGRAP" checkpoint --checkpoint-dir "$CKPT"
AFTER=$("$WGRAP" checkpoint --checkpoint-dir "$CKPT" \
  | sed -n 's/^journal: last incumbent //p')

if [ -z "$AFTER" ]; then
  echo "kill_resume_smoke: FAIL — resumed run journaled no incumbent" >&2
  exit 1
fi
if ! awk -v a="$AFTER" -v b="$BEFORE" 'BEGIN { exit !(a >= b - 1e-9) }'; then
  echo "kill_resume_smoke: FAIL — objective regressed: $AFTER < $BEFORE" >&2
  exit 1
fi
if [ ! -s "$WORK/assignment.tsv" ]; then
  echo "kill_resume_smoke: FAIL — no assignment written after resume" >&2
  exit 1
fi

echo "kill_resume_smoke: OK (incumbent $BEFORE at kill -> $AFTER after resume)"
