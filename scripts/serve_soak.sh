#!/usr/bin/env bash
# Chaos soak for the kill-safe service mode (`wgrap serve`).
#
# Feeds a generated event stream — salted with hostile lines (garbage,
# duplicate/stale ids, wrong-dimension vectors, unknown verbs) — into a
# durable serve session at a paced rate, SIGKILLs the server at a
# random point mid-stream, then:
#   1. `--verify` must certify the surviving state directory (snapshot
#      + journal-tail recovery byte-identical to a sequential fold of
#      the acknowledged WAL prefix — the oracle diff),
#   2. a `--resume` run re-fed the whole stream (an at-least-once client
#      retry: acked ids must be rejected, the tail accepted) must exit 0,
#   3. `--verify` must certify the final directory too,
#   4. hostile lines must be quarantined with line numbers, and the
#      journal must actually hold events.
#
# Used by CI (see .github/workflows/ci.yml) and runnable locally:
#   dune build && scripts/serve_soak.sh
set -euo pipefail

WGRAP=${WGRAP:-_build/default/bin/wgrap_cli.exe}
SEED=${SEED:-7}
N_EVENTS=${N_EVENTS:-150}
if [ ! -x "$WGRAP" ]; then
  echo "serve_soak: $WGRAP not built (run dune build first)" >&2
  exit 1
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
STATE="$WORK/state"
SERVE_ARGS=(--dim 8 --delta-p 2 --delta-r 4 --snapshot-every 16
  --event-budget 25 --state-dir "$STATE")

echo "== generate chaos event stream (seed $SEED, $N_EVENTS events) =="
awk -v seed="$SEED" -v n="$N_EVENTS" -v dim=8 '
  function vec(  s, i) {
    s = ""
    for (i = 0; i < dim; i++) s = s (i ? "," : "") sprintf("%.4f", 0.05 + rand())
    return s
  }
  BEGIN {
    srand(seed)
    id = 0; np = 0; nr = 6
    for (r = 0; r < nr; r++) print ++id " reviewer-join " r " " vec()
    for (e = 0; e < n; e++) {
      u = rand()
      if (u < 0.55 || np == 0)      { print ++id " paper-add " np " " vec(); np++ }
      else if (u < 0.65) print ++id " coi-add " int(rand() * np) " " int(rand() * nr)
      else if (u < 0.73) print ++id " bid-update " int(rand() * np) " " int(rand() * nr) " " sprintf("%.3f", rand() * 2)
      else if (u < 0.78) print ++id " paper-withdraw " int(rand() * np)
      else if (u < 0.88) print ++id " query " int(rand() * np)
      # hostile tail: the loop must reject these and keep going
      else if (u < 0.91) print "garbage from a confused client"
      else if (u < 0.94) print id " paper-add " np " 0.5,0.5"
      else if (u < 0.97) print int(rand() * id) " coi-add 0 0"
      else               print ++id " paper-nuke " int(rand() * (np + 1))
    }
    print ++id " stats"
  }' >"$WORK/stream.txt"
wc -l "$WORK/stream.txt"

echo "== start durable serve session (paced feed) =="
PACE=0.008
(
  while IFS= read -r line; do
    printf '%s\n' "$line"
    sleep "$PACE"
  done <"$WORK/stream.txt"
) | "$WGRAP" serve "${SERVE_ARGS[@]}" >"$WORK/serve1.log" 2>"$WORK/serve1.err" &
SERVER=$!

# Kill somewhere between 10% and 90% of the feed's duration, so the
# SIGKILL genuinely lands mid-stream (any point, any seed).
LINES=$(wc -l <"$WORK/stream.txt")
DELAY=$(awk -v seed="$SEED" -v lines="$LINES" -v pace="$PACE" \
  'BEGIN { srand(seed); printf "%.2f", lines * pace * (0.1 + rand() * 0.8) }')
sleep "$DELAY"
if kill -0 "$SERVER" 2>/dev/null; then
  echo "== SIGKILL pid $SERVER after ${DELAY}s mid-stream =="
  kill -KILL "$SERVER" 2>/dev/null || true
else
  echo "== stream finished before the ${DELAY}s kill point — resume still must work =="
fi
wait "$SERVER" 2>/dev/null || true
ACKED_AT_KILL=$(grep -c '^ok ' "$WORK/serve1.log" || true)
echo "acked before kill: $ACKED_AT_KILL"

echo "== oracle verify after kill =="
"$WGRAP" serve "${SERVE_ARGS[@]}" --verify | tee "$WORK/verify1.txt"
grep -q 'verify: ok' "$WORK/verify1.txt"
SEQ_AT_KILL=$(sed -n 's/.*entries=\([0-9]*\).*/\1/p' "$WORK/verify1.txt")

echo "== resume and re-feed the whole stream (at-least-once retry) =="
# Paced like the first pass: a full-speed file feed would exceed the
# admission bound on purpose (that is the overload contract, measured
# separately by bench/serve_bench.exe) and shed the tail as busy.
(
  while IFS= read -r line; do
    printf '%s\n' "$line"
    sleep "$PACE"
  done <"$WORK/stream.txt"
) | "$WGRAP" serve "${SERVE_ARGS[@]}" --resume \
  >"$WORK/serve2.log" 2>"$WORK/serve2.err"

echo "== oracle verify after resume =="
"$WGRAP" serve "${SERVE_ARGS[@]}" --verify | tee "$WORK/verify2.txt"
grep -q 'verify: ok' "$WORK/verify2.txt"

echo "== invariants =="
if ! grep -q '^ok ' "$WORK/serve2.log"; then
  echo "serve_soak: FAIL — resumed run acknowledged nothing" >&2
  exit 1
fi
if [ "$ACKED_AT_KILL" -gt 0 ] && ! grep -q '^err ' "$WORK/serve2.log"; then
  echo "serve_soak: FAIL — replayed acked ids were not rejected" >&2
  exit 1
fi
if [ ! -s "$STATE/events.wal" ]; then
  echo "serve_soak: FAIL — empty journal after soak" >&2
  exit 1
fi
if [ ! -s "$STATE/quarantine.log" ]; then
  echo "serve_soak: FAIL — hostile lines were not quarantined" >&2
  exit 1
fi
if ! grep -q 'line=' "$STATE/quarantine.log"; then
  echo "serve_soak: FAIL — quarantine rows carry no line numbers" >&2
  exit 1
fi

FINAL_SEQ=$(sed -n 's/.*entries=\([0-9]*\).*/\1/p' "$WORK/verify2.txt")
if [ "$FINAL_SEQ" -lt "$SEQ_AT_KILL" ]; then
  echo "serve_soak: FAIL — resume lost acknowledged entries ($SEQ_AT_KILL -> $FINAL_SEQ)" >&2
  exit 1
fi
echo "serve_soak: OK (entries $SEQ_AT_KILL at kill -> $FINAL_SEQ after resume, $ACKED_AT_KILL acks before kill)"
