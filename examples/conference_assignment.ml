(* Conference Reviewer Assignment end to end (the Section 4 / Section
   5.2 scenario): assign every submission of a simulated conference to
   delta_p = 3 PC members, respecting workloads and conflicts of
   interest.

   Pipeline: synthetic corpus -> ATM topic extraction -> WGRAP instance
   (with authorship COIs) -> SDGA -> stochastic refinement -> report,
   including a per-paper case study in the style of the paper's
   Figures 19-20.

   Run with: dune exec examples/conference_assignment.exe *)

module Rng = Wgrap_util.Rng
module Timer = Wgrap_util.Timer
module Report = Wgrap_util.Report
open Wgrap

let () =
  let rng = Rng.create 2015 in
  let config = Dataset.Synthetic.scaled Dataset.Synthetic.default_config 0.2 in
  let corpus, _ = Dataset.Synthetic.generate ~config ~rng () in

  (* Simulate SIGMOD 2008: submissions are the DB papers of 2008, the PC
     is drawn from the area's most prolific authors. *)
  let spec =
    { (Option.get (Dataset.Datasets.find "DB08")) with
      Dataset.Datasets.n_reviewers = 30 }
  in
  let submissions = Dataset.Datasets.submissions corpus spec in
  let committee = Dataset.Datasets.committee corpus spec in
  Printf.printf "Conference: %d submissions, %d PC members\n"
    (List.length submissions) (List.length committee);

  let extracted, t_extract =
    Timer.time (fun () ->
        Dataset.Pipeline.extract ~gibbs_iters:60 ~rng ~corpus ~submissions
          ~committee ())
  in
  Printf.printf "Topic extraction (ATM + EM): %s\n"
    (Report.seconds_cell t_extract);

  let delta_p = 3 in
  let n_p = Array.length extracted.Dataset.Pipeline.paper_vectors in
  let n_r = Array.length extracted.Dataset.Pipeline.reviewer_vectors in
  let delta_r = Instance.min_workload ~papers:n_p ~reviewers:n_r ~delta_p in
  let coi = Dataset.Pipeline.coi_pairs corpus extracted in
  Printf.printf "Constraints: delta_p = %d, delta_r = %d, %d COI pairs\n"
    delta_p delta_r (List.length coi);
  let inst = Dataset.Pipeline.instance ~coi extracted ~delta_p ~delta_r in

  let sdga, t_sdga = Timer.time (fun () -> Sdga.solve inst) in
  let refined, t_sra = Timer.time (fun () -> Sra.refine ~ctx:(Ctx.make ~rng ()) inst sdga) in
  (match Assignment.validate inst refined with
  | Ok () -> ()
  | Error e -> failwith ("infeasible result: " ^ e));

  let ideal = Metrics.ideal inst in
  let report name a t =
    Printf.printf "  %-9s coverage %8.3f  optimality %s  lowest %.3f  (%s)\n"
      name
      (Assignment.coverage inst a)
      (Report.percent_cell (Metrics.optimality_ratio_against inst ~ideal a))
      (Metrics.lowest_coverage inst a)
      (Report.seconds_cell t)
  in
  Printf.printf "\nResults:\n";
  report "SDGA" sdga t_sdga;
  report "SDGA-SRA" refined t_sra;

  (* Case study: the submission with the strongest privacy flavour,
     mirroring the paper's Figure 19. *)
  let keywords = Dataset.Pipeline.topic_keywords extracted ~k:6 in
  let privacy_topic =
    (* The trained topic whose keyword list mentions "privacy", if any;
       otherwise topic 0. *)
    let found = ref 0 in
    Array.iteri
      (fun t ws -> if List.mem "privacy" ws then found := t)
      keywords;
    !found
  in
  let target =
    let best = ref 0 and best_w = ref 0. in
    Array.iteri
      (fun p v ->
        if v.(privacy_topic) > !best_w then begin
          best_w := v.(privacy_topic);
          best := p
        end)
      extracted.Dataset.Pipeline.paper_vectors;
    !best
  in
  let pid = extracted.Dataset.Pipeline.paper_ids.(target) in
  Printf.printf "\nCase study: %S\n"
    corpus.Dataset.Corpus.papers.(pid).Dataset.Corpus.title;
  let cs = Metrics.case_study inst refined ~paper:target ~k:5 in
  List.iteri
    (fun i t ->
      Printf.printf "  topic %2d [%s]\n    paper %.3f | group %.3f\n" t
        (String.concat ", "
           (List.filteri (fun j _ -> j < 4) keywords.(t)))
        cs.Metrics.paper_weights.(i)
        cs.Metrics.group_weights.(i))
    cs.Metrics.topics;
  Printf.printf "  assigned reviewers:\n";
  List.iter
    (fun (row, _) ->
      let a = extracted.Dataset.Pipeline.reviewer_ids.(row) in
      Printf.printf "    - %s\n"
        corpus.Dataset.Corpus.authors.(a).Dataset.Corpus.name)
    cs.Metrics.member_weights;
  Printf.printf "  group coverage of this paper: %.4f\n" cs.Metrics.score
