(* Quickstart: the WGRAP API on a hand-built instance.

   Three topics (think: Databases, Data Mining, IR), four reviewers,
   three papers. We ask for delta_p = 2 reviewers per paper with at
   most delta_r = 2 papers per reviewer, solve with SDGA, refine with
   SRA, and also show the single-paper (journal) case solved exactly
   by BBA.

   Run with: dune exec examples/quickstart.exe *)

open Wgrap

let () =
  (* Topic vectors: relevance of each reviewer/paper to (DB, DM, IR). *)
  let reviewers =
    [|
      [| 0.8; 0.2; 0.0 |] (* r0: DB person *);
      [| 0.1; 0.7; 0.2 |] (* r1: DM person *);
      [| 0.0; 0.3; 0.7 |] (* r2: IR person *);
      [| 0.4; 0.4; 0.2 |] (* r3: generalist *);
    |]
  in
  let papers =
    [|
      [| 0.6; 0.4; 0.0 |] (* p0: DB paper with a DM angle *);
      [| 0.0; 0.5; 0.5 |] (* p1: DM/IR paper *);
      [| 0.3; 0.3; 0.4 |] (* p2: interdisciplinary *);
    |]
  in
  let inst =
    Instance.create_exn ~papers ~reviewers ~delta_p:2 ~delta_r:2 ()
  in

  (* Conference assignment: SDGA (1/2-approximation), then stochastic
     refinement. *)
  let sdga = Sdga.solve inst in
  let refined = Sra.refine ~ctx:(Ctx.make ~seed:42 ()) inst sdga in
  Printf.printf "Conference assignment (delta_p = 2, delta_r = 2)\n";
  Printf.printf "  SDGA coverage      = %.4f\n" (Assignment.coverage inst sdga);
  Printf.printf "  SDGA-SRA coverage  = %.4f\n" (Assignment.coverage inst refined);
  Array.iteri
    (fun p group ->
      Printf.printf "  paper %d -> reviewers {%s} (c = %.4f)\n" p
        (String.concat ", " (List.map string_of_int (List.sort compare group)))
        (Assignment.paper_score inst refined p))
    refined.Assignment.groups;

  (* Journal assignment: the exact best group for one new paper. *)
  let submission = [| 0.5; 0.1; 0.4 |] in
  let problem =
    Jra.make ~paper:submission ~pool:reviewers ~group_size:2 ()
  in
  let best = Jra_bba.solve problem in
  Printf.printf "\nJournal assignment for paper (0.5, 0.1, 0.4)\n";
  Printf.printf "  best group {%s}, coverage %.4f\n"
    (String.concat ", " (List.map string_of_int best.Jra.group))
    best.Jra.score;
  (* Runner-up groups, exactly ranked. *)
  List.iteri
    (fun i sol ->
      Printf.printf "  #%d {%s} %.4f\n" (i + 1)
        (String.concat ", " (List.map string_of_int sol.Jra.group))
        sol.Jra.score)
    (Jra_bba.top_k problem ~k:3)
